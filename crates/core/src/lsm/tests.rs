use super::*;
use crate::lookup::Mode;
use crate::probe::{AlwaysAvailable, ProbeService};
use crate::reading::SensorMeta;
use crate::time::TimeDelta;
use crate::tree::{ColrConfig, ColrTree};
use colr_geo::{Point, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EXPIRY_MS: u64 = 300_000;

/// A probe service that never returns data — isolates what the cache serves.
struct Dead;

impl ProbeService for Dead {
    fn probe_batch(&self, ids: &[SensorId], _now: Timestamp) -> Vec<Option<Reading>> {
        vec![None; ids.len()]
    }
}

fn grid_sensors(n: usize, side: usize) -> Vec<SensorMeta> {
    (0..n)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new((i % side) as f64, (i / side) as f64),
                TimeDelta::from_millis(EXPIRY_MS),
                1.0,
            )
        })
        .collect()
}

fn viewport() -> Rect {
    Rect::from_coords(-0.5, -0.5, 10.5, 10.5)
}

fn sample_query(r: f64) -> Query {
    Query::range(viewport(), TimeDelta::from_millis(EXPIRY_MS)).with_sample_size(r)
}

fn outputs_equal(a: &QueryOutput, b: &QueryOutput) -> bool {
    a.stats == b.stats
        && a.latency_ms == b.latency_ms
        && a.readings == b.readings
        && a.groups.len() == b.groups.len()
        && a.groups.iter().zip(&b.groups).all(|(x, y)| {
            x.node == y.node
                && x.bbox == y.bbox
                && x.agg == y.agg
                && x.from_cache == y.from_cache
                && x.target == y.target
                && x.results == y.results
        })
}

#[test]
fn degenerate_single_level_replays_monolithic_bit_identically() {
    let sensors = grid_sensors(256, 16);
    let mono = ColrTree::build(sensors.clone(), ColrConfig::default(), 42);
    let lsm = LsmTree::new(sensors, ColrConfig::default(), LsmConfig::default(), 42);
    let probe = AlwaysAvailable {
        expiry_ms: EXPIRY_MS,
    };
    for (i, mode) in [Mode::Colr, Mode::HierCache, Mode::RTree]
        .iter()
        .enumerate()
    {
        // A warm/cold pair per mode: the second query must replay against
        // the identically mutated cache.
        for step in 0..2u64 {
            let now = Timestamp(1_000 + step * 10_000);
            let q = sample_query(24.0);
            let mut r1 = StdRng::seed_from_u64(7 + i as u64);
            let mut r2 = StdRng::seed_from_u64(7 + i as u64);
            let a = mono.execute(&q, *mode, &probe, now, &mut r1);
            let b = lsm.execute(&q, *mode, &probe, now, &mut r2);
            assert!(
                outputs_equal(&a, &b),
                "mode {mode:?} step {step}: degenerate LSM diverged from monolithic"
            );
        }
    }
}

#[test]
fn registration_is_visible_to_the_next_query() {
    let lsm = LsmTree::new(
        grid_sensors(64, 8),
        ColrConfig::default(),
        LsmConfig::default(),
        1,
    );
    lsm.register(SensorMeta::new(
        500,
        Point::new(100.0, 100.0),
        TimeDelta::from_millis(EXPIRY_MS),
        1.0,
    ));
    let q = Query::range(
        Rect::from_coords(99.0, 99.0, 101.0, 101.0),
        TimeDelta::from_millis(EXPIRY_MS),
    );
    let probe = AlwaysAvailable {
        expiry_ms: EXPIRY_MS,
    };
    let mut rng = StdRng::seed_from_u64(3);
    let out = lsm.execute(&q, Mode::RTree, &probe, Timestamp(1_000), &mut rng);
    assert_eq!(out.readings.len(), 1);
    assert_eq!(out.readings[0].sensor, SensorId(500));
    assert_eq!(lsm.stats().l0_occupancy, 1);
}

#[test]
fn retire_masks_immediately_and_merge_drops_physically() {
    let lsm = LsmTree::new(
        grid_sensors(64, 8),
        ColrConfig::default(),
        LsmConfig::default(),
        1,
    );
    // A small second level whose tombstones the next merge will purge.
    for i in 0..4 {
        lsm.register(SensorMeta::new(
            100 + i,
            Point::new(40.0 + i as f64, 40.0),
            TimeDelta::from_millis(EXPIRY_MS),
            1.0,
        ));
    }
    lsm.merge(Timestamp(500));
    assert_eq!(lsm.stats().levels, 2);
    let probe = AlwaysAvailable {
        expiry_ms: EXPIRY_MS,
    };
    // Warm the victims' cache entries, then retire them: one in the large
    // base level (stays masked), one in the small level (purged next merge).
    let all = Query::range(
        Rect::from_coords(-0.5, -0.5, 44.5, 44.5),
        TimeDelta::from_millis(EXPIRY_MS),
    );
    let mut rng = StdRng::seed_from_u64(5);
    let warm = lsm.execute(&all, Mode::HierCache, &probe, Timestamp(1_000), &mut rng);
    assert_eq!(warm.result_size(), 68);
    assert!(lsm.retire(SensorId(0)));
    assert!(lsm.retire(SensorId(100)));
    assert!(!lsm.retire(SensorId(0)), "double retire must be rejected");
    // Masked immediately: the probe still answers, the index must not ask,
    // and the decremented slot aggregates must not count them either.
    let out = lsm.execute(&all, Mode::RTree, &probe, Timestamp(2_000), &mut rng);
    assert!(out
        .readings
        .iter()
        .all(|r| r.sensor != SensorId(0) && r.sensor != SensorId(100)));
    assert_eq!(out.readings.len(), 66);
    let cached = lsm.execute(&all, Mode::HierCache, &Dead, Timestamp(2_000), &mut rng);
    assert!(
        cached.result_size() <= 66,
        "retired sensors leaked from cached slots: {}",
        cached.result_size()
    );
    assert_eq!(lsm.stats().tombstones, 2);
    assert_eq!(lsm.stats().live_sensors, 66);
    // The next merge absorbs the small trailing level and purges its
    // tombstone physically; the base-level tombstone stays masked.
    let report = lsm.merge(Timestamp(2_000));
    assert_eq!(report.dropped_tombstones, 1);
    assert_eq!(lsm.stats().tombstones, 1);
    assert_eq!(lsm.stats().live_sensors, 66);
    assert!(!lsm.retire(SensorId(100)), "dropped sensor is unknown");
}

#[test]
fn merge_compacts_l0_and_carries_fresh_entries() {
    let lsm = LsmTree::new(
        grid_sensors(64, 8),
        ColrConfig::default(),
        LsmConfig::default(),
        1,
    );
    for i in 0..8 {
        lsm.register(SensorMeta::new(
            100 + i,
            Point::new(50.0 + i as f64, 50.0),
            TimeDelta::from_millis(EXPIRY_MS),
            1.0,
        ));
    }
    let probe = AlwaysAvailable {
        expiry_ms: EXPIRY_MS,
    };
    // Populate the L0 cache through a query (immediate write-back).
    let q = Query::range(
        Rect::from_coords(49.0, 49.0, 58.0, 51.0),
        TimeDelta::from_millis(EXPIRY_MS),
    );
    let mut rng = StdRng::seed_from_u64(9);
    let out = lsm.execute(&q, Mode::HierCache, &probe, Timestamp(1_000), &mut rng);
    assert_eq!(out.readings.len(), 8);
    let report = lsm.merge(Timestamp(1_500));
    assert!(report.merged_sensors >= 8);
    assert!(
        report.carried_entries >= 8,
        "L0 cache entries must survive the merge (got {})",
        report.carried_entries
    );
    assert_eq!(report.l0_after, 0);
    // The carried entries now serve from the merged level without probing.
    let cached = lsm.execute(&q, Mode::HierCache, &Dead, Timestamp(2_000), &mut rng);
    assert_eq!(
        cached.result_size(),
        8,
        "carried entries did not serve after the merge"
    );
    assert_eq!(cached.stats.sensors_probed, 0);
}

#[test]
fn layered_sampling_keeps_the_expected_size() {
    let lsm = LsmTree::new(
        grid_sensors(128, 16),
        ColrConfig::default(),
        LsmConfig::default(),
        11,
    );
    // Second component: a merged level over late registrations.
    for i in 0..32 {
        lsm.register(SensorMeta::new(
            200 + i,
            Point::new((i % 8) as f64, 8.0 + (i / 8) as f64),
            TimeDelta::from_millis(EXPIRY_MS),
            1.0,
        ));
    }
    lsm.merge(Timestamp(500));
    // Third component: fresh L0 arrivals.
    for i in 0..16 {
        lsm.register(SensorMeta::new(
            300 + i,
            Point::new((i % 4) as f64, 10.0 + (i / 4) as f64),
            TimeDelta::from_millis(EXPIRY_MS),
            1.0,
        ));
    }
    assert!(lsm.stats().levels >= 2);
    assert_eq!(lsm.stats().l0_occupancy, 16);
    let probe = AlwaysAvailable {
        expiry_ms: EXPIRY_MS,
    };
    let q = Query::range(
        Rect::from_coords(-0.5, -0.5, 16.5, 14.5),
        TimeDelta::from_millis(EXPIRY_MS),
    )
    .with_sample_size(32.0);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = lsm.execute(&q, Mode::Colr, &probe, Timestamp(1_000), &mut rng);
        let total = out.result_size();
        assert!(
            (24..=40).contains(&total),
            "seed {seed}: layered sample size {total} strays from target 32"
        );
        let targets: f64 = out.groups.iter().map(|g| g.target).sum();
        assert!(
            (targets - 32.0).abs() < 8.0,
            "seed {seed}: apportioned targets sum to {targets}"
        );
    }
}

#[test]
fn frozen_execution_defers_write_back_until_apply() {
    let lsm = LsmTree::new(
        grid_sensors(64, 8),
        ColrConfig::default(),
        LsmConfig::default(),
        2,
    );
    for i in 0..4 {
        lsm.register(SensorMeta::new(
            400 + i,
            Point::new(20.0 + i as f64, 20.0),
            TimeDelta::from_millis(EXPIRY_MS),
            1.0,
        ));
    }
    let probe = AlwaysAvailable {
        expiry_ms: EXPIRY_MS,
    };
    let q = Query::range(
        Rect::from_coords(-0.5, -0.5, 24.5, 24.5),
        TimeDelta::from_millis(EXPIRY_MS),
    );
    lsm.advance(Timestamp(1_000));
    let snap = lsm.freeze();
    let mut rng = StdRng::seed_from_u64(4);
    let (out, deferred) = lsm.execute_frozen(
        &snap,
        &q,
        Mode::HierCache,
        &probe,
        Timestamp(1_000),
        &mut rng,
    );
    assert_eq!(out.readings.len(), 68);
    assert_eq!(out.stats.cache_inserts, 0, "frozen run must not write back");
    assert_eq!(deferred.len(), 68);
    // Nothing cached yet: a dead-probe run finds an empty cache.
    let mut rng2 = StdRng::seed_from_u64(4);
    let (cold, _) = lsm.execute_frozen(
        &snap,
        &q,
        Mode::HierCache,
        &Dead,
        Timestamp(1_000),
        &mut rng2,
    );
    assert_eq!(cold.result_size(), 0);
    let applied = lsm.apply_deferred(&deferred, Timestamp(1_000));
    assert_eq!(applied, 68);
    // Now the cache serves the same population without probes.
    let mut rng3 = StdRng::seed_from_u64(4);
    let warm = lsm.execute(&q, Mode::HierCache, &Dead, Timestamp(1_200), &mut rng3);
    assert_eq!(warm.result_size(), 68);
}

#[test]
fn merge_mid_batch_routes_deferred_readings_to_the_new_level() {
    let lsm = LsmTree::new(
        grid_sensors(64, 8),
        ColrConfig::default(),
        LsmConfig::default(),
        3,
    );
    for i in 0..6 {
        lsm.register(SensorMeta::new(
            600 + i,
            Point::new(30.0 + i as f64, 30.0),
            TimeDelta::from_millis(EXPIRY_MS),
            1.0,
        ));
    }
    let probe = AlwaysAvailable {
        expiry_ms: EXPIRY_MS,
    };
    let q = Query::range(
        Rect::from_coords(29.0, 29.0, 36.5, 31.0),
        TimeDelta::from_millis(EXPIRY_MS),
    );
    lsm.advance(Timestamp(1_000));
    let snap = lsm.freeze();
    let mut rng = StdRng::seed_from_u64(8);
    let (out, deferred) = lsm.execute_frozen(
        &snap,
        &q,
        Mode::HierCache,
        &probe,
        Timestamp(1_000),
        &mut rng,
    );
    assert_eq!(out.readings.len(), 6);
    // The merge lands between execution and the deferred apply.
    lsm.merge(Timestamp(1_000));
    let applied = lsm.apply_deferred(&deferred, Timestamp(1_000));
    assert_eq!(applied, 6, "deferred readings must follow merged sensors");
    let mut rng2 = StdRng::seed_from_u64(8);
    let warm = lsm.execute(&q, Mode::HierCache, &Dead, Timestamp(1_200), &mut rng2);
    assert_eq!(warm.result_size(), 6);
}

#[test]
fn wants_merge_tracks_l0_capacity() {
    let lsm = LsmTree::new(
        grid_sensors(16, 4),
        ColrConfig::default(),
        LsmConfig {
            l0_capacity: 4,
            level_ratio: 4,
        },
        1,
    );
    assert!(!lsm.wants_merge());
    for i in 0..4 {
        lsm.register(SensorMeta::new(
            50 + i,
            Point::new(i as f64, -5.0),
            TimeDelta::from_millis(EXPIRY_MS),
            1.0,
        ));
    }
    assert!(lsm.wants_merge());
    lsm.merge(Timestamp(100));
    assert!(!lsm.wants_merge());
}

#[test]
fn empty_merge_is_a_no_op() {
    let lsm = LsmTree::new(
        grid_sensors(16, 4),
        ColrConfig::default(),
        LsmConfig::default(),
        1,
    );
    let before = lsm.stats();
    let report = lsm.merge(Timestamp(100));
    assert_eq!(report.absorbed_levels, 0);
    assert_eq!(report.merged_sensors, 0);
    assert_eq!(lsm.stats(), before);
}

#[test]
fn apportionment_is_exact_and_deterministic() {
    let targets = [(0usize, 3.0), (1, 1.0), (2, 1.0)];
    let shares = apportion(10, &targets);
    assert_eq!(shares.iter().sum::<usize>(), 10);
    assert_eq!(shares, vec![6, 2, 2]);
    let tied = apportion(4, &[(0usize, 1.0), (1, 1.0), (2, 1.0)]);
    assert_eq!(tied, vec![2, 1, 1]);
    assert_eq!(apportion(5, &[(0usize, 0.0), (1, 0.0)]), vec![5, 0]);
}

#[test]
fn geometric_absorption_bounds_level_count() {
    let lsm = LsmTree::new(
        grid_sensors(256, 16),
        ColrConfig::default(),
        LsmConfig {
            l0_capacity: 8,
            level_ratio: 4,
        },
        17,
    );
    let mut next_id = 1_000u32;
    for round in 0..12 {
        for _ in 0..8 {
            lsm.register(SensorMeta::new(
                next_id,
                Point::new((next_id % 32) as f64, 20.0 + (next_id % 7) as f64),
                TimeDelta::from_millis(EXPIRY_MS),
                1.0,
            ));
            next_id += 1;
        }
        lsm.merge(Timestamp(1_000 + round));
        assert!(
            lsm.stats().levels <= 5,
            "round {round}: {} levels — trailing runs are not being absorbed",
            lsm.stats().levels
        );
    }
    assert_eq!(lsm.stats().live_sensors, 256 + 96);
}
