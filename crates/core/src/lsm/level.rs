//! The two kinds of LSM level: immutable bulk-built COLR-Tree levels with a
//! local↔global id translation boundary, and the small mutable L0 that
//! absorbs registrations the instant they arrive.
//!
//! [`crate::tree::ColrTree::build`] requires dense in-order sensor ids, so
//! every immutable level renumbers its population to local ids `0..n` and
//! keeps the sorted `global` map alongside. Everything that crosses the
//! level boundary — probes going out, readings coming back — is translated
//! by [`LevelProbe`], so the portal's probe service only ever sees global
//! ids and a level tree only ever sees its own local ids. A level whose map
//! is the identity and which carries no tombstones is a *passthrough*: the
//! wrapper forwards untouched, which is what makes a single-level LSM replay
//! the monolithic tree bit-identically.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::lookup::Query;
use crate::probe::{ProbeReport, ProbeService};
use crate::reading::{Reading, SensorId, SensorMeta};
use crate::time::Timestamp;
use crate::tree::{CachedEntry, ColrConfig, ColrTree};

/// One immutable LSM level: a bulk-built COLR-Tree over a locally renumbered
/// population, plus the translation map back to global ids and the tombstone
/// mask for sensors retired since the level was built.
pub struct LsmLevel {
    /// Unique, monotone level key (stable across publications; the write-back
    /// router and the directory validate against it).
    key: u64,
    tree: ColrTree,
    /// Local index → global id, ascending (levels are built over populations
    /// sorted by global id).
    global: Vec<SensorId>,
    /// `true` when `global[j] == j` for all `j` — the base level built
    /// straight from the initial population.
    identity: bool,
    /// Per-local-sensor tombstone mask. A tombstoned sensor is masked out of
    /// probes (it reads as permanently unavailable) and its cached readings
    /// are purged, so it can never appear in an answer; the merge that next
    /// touches this level drops it physically.
    tombstoned: Box<[AtomicBool]>,
    tombstones: AtomicU64,
}

impl LsmLevel {
    /// Builds a level over `metas` (carrying *global* ids, sorted ascending)
    /// by renumbering to the dense local ids the bulk builder requires.
    pub(crate) fn build(key: u64, metas: &[SensorMeta], config: ColrConfig, seed: u64) -> LsmLevel {
        debug_assert!(
            metas.windows(2).all(|w| w[0].id.0 < w[1].id.0),
            "level populations must be sorted by global id"
        );
        let global: Vec<SensorId> = metas.iter().map(|m| m.id).collect();
        let identity = global.iter().enumerate().all(|(j, id)| id.index() == j);
        let local: Vec<SensorMeta> = metas
            .iter()
            .enumerate()
            .map(|(j, m)| {
                SensorMeta::new(j as u32, m.location, m.expiry, m.availability).with_kind(m.kind)
            })
            .collect();
        let tree = ColrTree::build(local, config, seed);
        let tombstoned = (0..global.len())
            .map(|_| AtomicBool::new(false))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LsmLevel {
            key,
            tree,
            global,
            identity,
            tombstoned,
            tombstones: AtomicU64::new(0),
        }
    }

    /// The level's unique key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The level's index (local ids).
    pub fn tree(&self) -> &ColrTree {
        &self.tree
    }

    /// Sensors the level was built over (tombstoned included).
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// `true` when the level holds no sensors at all.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// Sensors not yet tombstoned.
    pub fn live(&self) -> usize {
        self.len() - self.tombstones.load(Ordering::Acquire) as usize
    }

    /// Tombstoned sensors awaiting physical removal by a merge.
    pub fn tombstone_count(&self) -> u64 {
        self.tombstones.load(Ordering::Acquire)
    }

    /// The global id of local sensor `local`.
    pub fn global_id(&self, local: SensorId) -> SensorId {
        self.global[local.index()]
    }

    /// The local id of global sensor `id`, if this level holds it.
    pub fn local_of(&self, id: SensorId) -> Option<SensorId> {
        self.global
            .binary_search(&id)
            .ok()
            .map(|j| SensorId(j as u32))
    }

    /// `true` when local sensor `local` has been tombstoned.
    pub fn is_tombstoned(&self, local: SensorId) -> bool {
        self.tombstoned[local.index()].load(Ordering::Acquire)
    }

    /// `true` when the probe wrapper can forward untouched: identity id map
    /// and no tombstones. The degenerate single-level fast path requires
    /// this, and it is what preserves bit parity with the monolithic tree.
    pub fn passthrough(&self) -> bool {
        self.identity && self.tombstones.load(Ordering::Acquire) == 0
    }

    /// Tombstones local sensor `local`: masks it from probes, purges its
    /// cached reading (updating every ancestor aggregate, so slot caches
    /// never serve it again), and decrements the live weight. Returns `false`
    /// when it was already tombstoned.
    pub(crate) fn tombstone(&self, local: SensorId) -> bool {
        if self.tombstoned[local.index()].swap(true, Ordering::AcqRel) {
            return false;
        }
        self.tombstones.fetch_add(1, Ordering::AcqRel);
        self.tree.remove_cached(local);
        true
    }

    /// Fraction of the built population still live (1.0 for a fresh level).
    pub fn live_fraction(&self) -> f64 {
        if self.global.is_empty() {
            return 0.0;
        }
        self.live() as f64 / self.len() as f64
    }

    /// The level's Algorithm 1 split weight for a query: the root's
    /// (kind-filtered) sensor weight, discounted by the live fraction (node
    /// weights inside the tree still count tombstoned sensors until the next
    /// merge — a bounded, documented approximation) and scaled by the
    /// viewport overlap, exactly as the shard router weighs its shards.
    pub fn query_weight(&self, region: &colr_geo::Region, kind_filter: Option<u16>) -> f64 {
        if self.global.is_empty() {
            return 0.0;
        }
        let root = self.tree.node(self.tree.root());
        root.query_weight(kind_filter) as f64
            * self.live_fraction()
            * region.overlap_fraction(&root.bbox)
    }

    /// Reconstructs the *global* meta of local sensor `local`.
    pub fn global_meta(&self, local: usize) -> SensorMeta {
        let m = self.tree.sensors()[local];
        SensorMeta::new(self.global[local].0, m.location, m.expiry, m.availability)
            .with_kind(m.kind)
    }

    /// Every live (non-tombstoned) sensor with its global id, ascending.
    pub(crate) fn live_global_metas(&self) -> Vec<SensorMeta> {
        (0..self.len())
            .filter(|&j| !self.tombstoned[j].load(Ordering::Acquire))
            .map(|j| self.global_meta(j))
            .collect()
    }

    /// The level's cached readings translated to global ids, for merge
    /// carry-over (the LSM analogue of what
    /// [`crate::tree::ColrTree::cached_entries`] feeds `restore_entries`).
    pub(crate) fn cached_entries_global(&self) -> Vec<CachedEntry> {
        self.tree
            .cached_entries()
            .into_iter()
            .map(|mut e| {
                e.reading.sensor = self.global_id(e.reading.sensor);
                e
            })
            .collect()
    }
}

/// The id-translation probe boundary of one level: local ids out to global,
/// global readings back to local, tombstoned sensors masked to `None`
/// without touching the wire. Forwards the fault-aware
/// [`ProbeService::probe_batch_report`] (retry budget included), so a
/// resilient prober keeps its retry/breaker semantics through the wrapper.
pub(crate) struct LevelProbe<'a, P: ?Sized> {
    pub(crate) inner: &'a P,
    pub(crate) level: &'a LsmLevel,
}

impl<P: ProbeService + ?Sized> LevelProbe<'_, P> {
    /// Splits `ids` into the forwarded global list and the positions each
    /// forwarded outcome scatters back to (tombstoned ids keep `None`).
    fn translate(&self, ids: &[SensorId]) -> (Vec<SensorId>, Vec<usize>) {
        let mut fwd = Vec::with_capacity(ids.len());
        let mut pos = Vec::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            if !self.level.is_tombstoned(id) {
                fwd.push(self.level.global_id(id));
                pos.push(i);
            }
        }
        (fwd, pos)
    }

    fn scatter(
        &self,
        ids: &[SensorId],
        pos: Vec<usize>,
        results: Vec<Option<Reading>>,
    ) -> Vec<Option<Reading>> {
        let mut out = vec![None; ids.len()];
        for (slot, r) in pos.into_iter().zip(results) {
            out[slot] = r.map(|mut reading| {
                reading.sensor = ids[slot];
                reading
            });
        }
        out
    }
}

impl<P: ProbeService + ?Sized> ProbeService for LevelProbe<'_, P> {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        if self.level.passthrough() {
            return self.inner.probe_batch(ids, now);
        }
        let (fwd, pos) = self.translate(ids);
        if fwd.is_empty() {
            return vec![None; ids.len()];
        }
        let results = self.inner.probe_batch(&fwd, now);
        self.scatter(ids, pos, results)
    }

    fn probe_batch_report(
        &self,
        ids: &[SensorId],
        now: Timestamp,
        retry_budget_ms: u64,
    ) -> ProbeReport {
        if self.level.passthrough() {
            return self.inner.probe_batch_report(ids, now, retry_budget_ms);
        }
        let (fwd, pos) = self.translate(ids);
        if fwd.is_empty() {
            return ProbeReport::plain(vec![None; ids.len()]);
        }
        let mut report = self.inner.probe_batch_report(&fwd, now, retry_budget_ms);
        report.outcomes = self.scatter(ids, pos, report.outcomes);
        report
    }
}

// ---------------------------------------------------------------------------
// L0
// ---------------------------------------------------------------------------

/// The mutable top level: a flat, append-ordered list of freshly registered
/// sensors (global ids) with a per-sensor reading cache. Registration is one
/// push under a short write lock — O(1), immediately visible to queries —
/// and the level stays small: every merge drains the prefix that existed
/// when the merge began into a bulk-built immutable level.
pub struct L0Level {
    inner: RwLock<L0Inner>,
}

#[derive(Default)]
struct L0Inner {
    /// Registration order; global ids. Append-only between merges.
    sensors: Vec<SensorMeta>,
    /// Global ids retired while still in L0.
    tombstoned: HashSet<u32>,
    /// Cached readings by global id (L0 is flat: no slot aggregates, just
    /// the raw-reading cache the merge carries into the built level).
    entries: HashMap<u32, CachedEntry>,
}

impl L0Level {
    pub(crate) fn new() -> L0Level {
        L0Level {
            inner: RwLock::new(L0Inner::default()),
        }
    }

    pub(crate) fn with_contents(sensors: Vec<SensorMeta>, entries: Vec<CachedEntry>) -> L0Level {
        let entries = entries
            .into_iter()
            .map(|e| (e.reading.sensor.0, e))
            .collect();
        L0Level {
            inner: RwLock::new(L0Inner {
                sensors,
                tombstoned: HashSet::new(),
                entries,
            }),
        }
    }

    /// Appends a freshly registered sensor — the O(1) ingestion path.
    pub(crate) fn push(&self, meta: SensorMeta) {
        self.inner.write().sensors.push(meta);
    }

    /// Sensors currently parked in L0 (tombstoned included).
    pub fn len(&self) -> usize {
        self.inner.read().sensors.len()
    }

    /// `true` when L0 holds no sensors (the degenerate-parity precondition).
    pub fn is_empty(&self) -> bool {
        self.inner.read().sensors.is_empty()
    }

    /// Live (non-tombstoned) sensors in L0.
    pub fn live(&self) -> usize {
        let inner = self.inner.read();
        inner.sensors.len() - inner.tombstoned.len()
    }

    pub(crate) fn tombstone_count(&self) -> usize {
        self.inner.read().tombstoned.len()
    }

    /// Retires global sensor `id` while it is still in L0. Returns `false`
    /// when the sensor is not here or already retired.
    pub(crate) fn tombstone(&self, id: SensorId) -> bool {
        let mut inner = self.inner.write();
        if !inner.sensors.iter().any(|m| m.id == id) || !inner.tombstoned.insert(id.0) {
            return false;
        }
        inner.entries.remove(&id.0);
        true
    }

    /// Live sensors matching the query's spatial + kind predicates, each
    /// with its cached reading (if any) — the L0 candidate scan. Taken under
    /// one read lock so a query sees a consistent L0 cut; probing happens
    /// after the lock is released.
    pub(crate) fn candidates(&self, query: &Query) -> Vec<(SensorMeta, Option<CachedEntry>)> {
        let inner = self.inner.read();
        inner
            .sensors
            .iter()
            .filter(|m| !inner.tombstoned.contains(&m.id.0) && query.matches_sensor(m))
            .map(|m| (*m, inner.entries.get(&m.id.0).copied()))
            .collect()
    }

    /// Every live sensor with its cached reading — the frozen-batch snapshot
    /// and the merge input.
    pub(crate) fn snapshot(&self) -> Vec<(SensorMeta, Option<CachedEntry>)> {
        let inner = self.inner.read();
        inner
            .sensors
            .iter()
            .filter(|m| !inner.tombstoned.contains(&m.id.0))
            .map(|m| (*m, inner.entries.get(&m.id.0).copied()))
            .collect()
    }

    /// Caches a freshly probed reading (write-back) if the sensor is still
    /// live in L0. Returns how many entries were inserted.
    pub(crate) fn insert_reading(&self, reading: Reading, fetched_at: Timestamp) -> usize {
        let mut inner = self.inner.write();
        let id = reading.sensor.0;
        if inner.tombstoned.contains(&id) || !inner.sensors.iter().any(|m| m.id.0 == id) {
            return 0;
        }
        inner.entries.insert(
            id,
            CachedEntry {
                reading,
                fetched_at,
            },
        );
        1
    }

    /// Drops expired cached readings (the flat analogue of the tree's slot
    /// roll at [`crate::tree::ColrTree::advance`]).
    pub(crate) fn advance(&self, now: Timestamp) {
        let mut inner = self.inner.write();
        inner.entries.retain(|_, e| e.reading.is_live(now));
    }

    /// Global ids retired while parked in L0 — physically dropped (not
    /// carried anywhere) by the merge that drains them.
    pub(crate) fn tombstoned_ids(&self) -> Vec<u32> {
        self.inner.read().tombstoned.iter().copied().collect()
    }

    /// Removes every sensor in `merged` (they now live in a built level) and
    /// every tombstoned sensor, returning what stays parked — the suffix
    /// registered while the merge was building. Called by the merge while it
    /// holds the publication write lock, so no registration can race the
    /// partition.
    pub(crate) fn drain_merged(
        &self,
        merged: &HashSet<u32>,
    ) -> (Vec<SensorMeta>, Vec<CachedEntry>) {
        let mut inner = self.inner.write();
        let mut rest = Vec::new();
        let mut rest_entries = Vec::new();
        for m in std::mem::take(&mut inner.sensors) {
            if merged.contains(&m.id.0) || inner.tombstoned.contains(&m.id.0) {
                continue;
            }
            rest.push(m);
            if let Some(e) = inner.entries.get(&m.id.0) {
                rest_entries.push(*e);
            }
        }
        (rest, rest_entries)
    }
}
