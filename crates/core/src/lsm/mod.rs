//! LSM-style incremental COLR-Tree index: continuous sensor churn without
//! stop-the-world rebuilds.
//!
//! The monolithic portal parks freshly registered sensors until a full bulk
//! rebuild republishes the tree, and has no retire path at all. This module
//! replaces that with a log-structured collection of levels:
//!
//! * **L0** — a small mutable top level ([`L0Level`]). `register` is one
//!   vector push; the sensor is visible to the very next query.
//! * **Immutable levels** — bulk-built COLR-Trees ([`LsmLevel`]) over
//!   geometrically larger populations. Retires tombstone in place: the
//!   sensor is masked out of probes, weights, and slot caches immediately,
//!   and dropped physically by the next merge that touches its level.
//! * **Merges** — [`LsmTree::merge`] drains L0 plus a trailing run of small
//!   (or heavily tombstoned) levels into one freshly bulk-built level,
//!   carrying still-fresh cached readings across through
//!   [`crate::tree::ColrTree::restore_entries`], exactly like the monolithic
//!   reindex carry-over. Queries never block: merges build off to the side
//!   and publish by swapping one `Arc`.
//!
//! Algorithm 1's sampling becomes *layered*: a query's sample target `R`
//! splits across components (levels + L0) in proportion to each component's
//! live weight, using the same largest-remainder apportionment the shard
//! router uses across shards. Expectation is preserved end-to-end
//! (Theorems 1/2: floors plus fractional remainders sum to exactly the
//! stochastically rounded `R`, and each component applies Algorithm 1's
//! availability oversampling internally), and the degenerate configuration —
//! a single untombstoned identity level with an empty L0 — bypasses the
//! layering entirely and replays the monolithic tree **bit-identically**,
//! RNG draw for RNG draw.

mod level;

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use level::LevelProbe;
pub use level::{L0Level, LsmLevel};

use crate::agg::PartialAgg;
use crate::lookup::{GroupResult, Mode, Query, QueryOutput};
use crate::probe::ProbeService;
use crate::reading::{Reading, SensorId, SensorMeta};
use crate::sampling::stochastic_round;
use crate::stats::QueryStats;
use crate::time::Timestamp;
use crate::tree::{CachedEntry, ColrConfig, NodeId};

/// Minimum availability used when compensating the L0 sample for expected
/// probe failures — same clamp as Algorithm 1's oversampling step (the
/// constant is private to the sampling module, duplicated here).
const MIN_AVAILABILITY: f64 = 0.05;

/// Sentinel `GroupResult::node` for groups produced by the flat L0 level,
/// which has no tree node to point at.
pub const L0_GROUP_NODE: NodeId = NodeId(u32::MAX);

/// Shape parameters of the level structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsmConfig {
    /// Soft L0 occupancy bound: [`LsmTree::wants_merge`] turns true once L0
    /// holds this many sensors. Registration never blocks on it — the bound
    /// is advisory, enforced by whoever drives merges.
    pub l0_capacity: usize,
    /// Geometric growth factor between adjacent levels: a merge absorbs the
    /// trailing run of levels while the next level in is smaller than
    /// `level_ratio ×` the population already being merged.
    pub level_ratio: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            l0_capacity: 1024,
            level_ratio: 4,
        }
    }
}

/// What one [`LsmTree::merge`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MergeReport {
    /// Immutable levels absorbed into the new level.
    pub absorbed_levels: usize,
    /// Live sensors in the freshly built level.
    pub merged_sensors: usize,
    /// Cached readings carried into the new level (post-filter: still live,
    /// in-window, sensor survived the merge).
    pub carried_entries: usize,
    /// Tombstoned sensors physically dropped.
    pub dropped_tombstones: usize,
    /// Wall-clock build+publish time, µs.
    pub duration_us: u64,
    /// Level count after publication.
    pub levels_after: usize,
    /// L0 occupancy after publication (sensors registered mid-merge).
    pub l0_after: usize,
}

/// Point-in-time shape of the level structure, for dashboards and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LsmStats {
    /// Immutable levels currently published.
    pub levels: usize,
    /// Sensors parked in L0 (live).
    pub l0_occupancy: usize,
    /// Live sensors across all components.
    pub live_sensors: usize,
    /// Tombstoned sensors awaiting physical removal.
    pub tombstones: usize,
    /// Merges completed since construction.
    pub merges: u64,
}

/// Where a global sensor currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SensorLoc {
    /// Parked in L0.
    L0,
    /// In the immutable level with this key, at this local index.
    Level { key: u64, local: u32 },
}

/// One published cut of the level structure. Immutable once published;
/// readers clone the `Arc` and work off a consistent snapshot while merges
/// prepare the next cut on the side.
struct LsmState {
    /// Oldest/largest first; merges append the freshly built level.
    levels: Vec<Arc<LsmLevel>>,
    l0: Arc<L0Level>,
}

impl LsmState {
    /// `true` when the structure is exactly the monolithic tree: one
    /// passthrough level, nothing in L0. Queries then bypass the layered
    /// planner and replay the monolithic execution bit-identically.
    fn degenerate(&self) -> bool {
        self.levels.len() == 1 && self.levels[0].passthrough() && self.l0.is_empty()
    }
}

/// A frozen cut for batch execution: queries of one batch all run against
/// this snapshot (levels by `Arc`, L0 by value), with probe results deferred
/// to an ordered [`LsmTree::apply_deferred`] — the LSM analogue of
/// [`crate::tree::ColrTree::execute_frozen`].
pub struct LsmSnapshot {
    state: Arc<LsmState>,
    l0: Vec<(SensorMeta, Option<CachedEntry>)>,
}

/// The incremental index: an `Arc`-swapped level stack (`LsmState`) plus the global
/// directory and retire registry that route churn to the right component.
///
/// Lock order (deadlock freedom): `state` → `retired` → `directory`. The
/// `merge_lock` serialises merges and is always taken first, before any of
/// the three.
pub struct LsmTree {
    config: ColrConfig,
    lsm: LsmConfig,
    seed: u64,
    state: RwLock<Arc<LsmState>>,
    /// Global id → current location. Updated at register/retire/merge.
    directory: Mutex<HashMap<u32, SensorLoc>>,
    /// Retire intents, kept until the sensor is physically dropped so a
    /// merge racing a retire re-applies the tombstone to the new level.
    retired: Mutex<HashSet<u32>>,
    merge_lock: Mutex<()>,
    next_level_key: AtomicU64,
    merges: AtomicU64,
}

impl LsmTree {
    /// Builds the base level over `sensors` (the same dense in-order
    /// population the monolithic [`crate::tree::ColrTree::build`] takes, so
    /// the base level is an identity passthrough) with an empty L0.
    ///
    /// `seed` must match the seed the monolithic build would use for the
    /// degenerate configuration to be bit-identical.
    pub fn new(sensors: Vec<SensorMeta>, config: ColrConfig, lsm: LsmConfig, seed: u64) -> LsmTree {
        let base = Arc::new(LsmLevel::build(0, &sensors, config.clone(), seed));
        let mut directory = HashMap::with_capacity(sensors.len());
        for (j, m) in sensors.iter().enumerate() {
            directory.insert(
                m.id.0,
                SensorLoc::Level {
                    key: 0,
                    local: j as u32,
                },
            );
        }
        let tree = LsmTree {
            config,
            lsm,
            seed,
            state: RwLock::new(Arc::new(LsmState {
                levels: vec![base],
                l0: Arc::new(L0Level::new()),
            })),
            directory: Mutex::new(directory),
            retired: Mutex::new(HashSet::new()),
            merge_lock: Mutex::new(()),
            next_level_key: AtomicU64::new(1),
            merges: AtomicU64::new(0),
        };
        tree.publish_gauges();
        tree
    }

    /// The tree-shape configuration every level is built with.
    pub fn config(&self) -> &ColrConfig {
        &self.config
    }

    /// The LSM shape parameters.
    pub fn lsm_config(&self) -> LsmConfig {
        self.lsm
    }

    /// The level whose tree anchors planning (most live sensors; ties to the
    /// oldest). For a fresh single-level LSM this is the monolithic tree.
    pub fn primary_level(&self) -> Arc<LsmLevel> {
        let state = self.state.read().clone();
        state
            .levels
            .iter()
            .max_by_key(|l| l.live())
            .cloned()
            .expect("LsmTree always holds at least one level")
    }

    /// Current shape counters.
    pub fn stats(&self) -> LsmStats {
        let state = self.state.read().clone();
        let tombstones: usize = state
            .levels
            .iter()
            .map(|l| l.tombstone_count() as usize)
            .sum::<usize>()
            + state.l0.tombstone_count();
        LsmStats {
            levels: state.levels.len(),
            l0_occupancy: state.l0.live(),
            live_sensors: state.levels.iter().map(|l| l.live()).sum::<usize>() + state.l0.live(),
            tombstones,
            merges: self.merges.load(Ordering::Acquire),
        }
    }

    /// `true` once L0 has outgrown its soft capacity and a merge is due.
    pub fn wants_merge(&self) -> bool {
        self.state.read().l0.len() >= self.lsm.l0_capacity.max(1)
    }

    /// Registers a sensor: one push into L0, visible to the next query.
    /// The read guard is held across the push so a concurrent merge
    /// publication (which holds the write lock) can never miss it.
    pub fn register(&self, meta: SensorMeta) {
        {
            let state = self.state.read();
            state.l0.push(meta);
            self.directory.lock().insert(meta.id.0, SensorLoc::L0);
        }
        let t = crate::telem::lsm();
        t.registrations.inc();
        t.l0_occupancy.set(self.state.read().l0.live() as i64);
    }

    /// Retires a sensor wherever it lives: tombstoned out of probes, sample
    /// weights, and cached slot aggregates immediately; physically dropped
    /// by the next merge touching its component. Returns `false` for
    /// unknown or already-retired sensors.
    pub fn retire(&self, id: SensorId) -> bool {
        let hit = {
            let state = self.state.read();
            let mut retired = self.retired.lock();
            let directory = self.directory.lock();
            let Some(&loc) = directory.get(&id.0) else {
                return false;
            };
            if !retired.insert(id.0) {
                return false;
            }
            match loc {
                SensorLoc::L0 => state.l0.tombstone(id),
                SensorLoc::Level { key, local } => state
                    .levels
                    .iter()
                    .find(|l| l.key() == key)
                    .map(|l| l.tombstone(SensorId(local)))
                    .unwrap_or(false),
            }
        };
        if hit {
            let t = crate::telem::lsm();
            t.retires.inc();
            self.publish_gauges();
        }
        hit
    }

    /// Rolls every component's cache window forward to `now`.
    pub fn advance(&self, now: Timestamp) {
        let state = self.state.read().clone();
        for level in &state.levels {
            level.tree().advance(now);
        }
        state.l0.advance(now);
    }

    /// Live sensors (global metas) across all components — levels in order,
    /// then L0 in registration order.
    pub fn live_sensor_metas(&self) -> Vec<SensorMeta> {
        let state = self.state.read().clone();
        let mut out = Vec::new();
        for level in &state.levels {
            out.extend(level.live_global_metas());
        }
        out.extend(state.l0.snapshot().into_iter().map(|(m, _)| m));
        out
    }

    /// Live sensors currently parked in L0 (the shard router's
    /// rebalance-on-merge input: only unmerged sensors are cheap to move).
    pub fn l0_sensor_metas(&self) -> Vec<SensorMeta> {
        let state = self.state.read().clone();
        state.l0.snapshot().into_iter().map(|(m, _)| m).collect()
    }

    /// The structure's live sampling weight for a viewport — the layered
    /// analogue of `root.query_weight × overlap_fraction` on the monolithic
    /// tree, used by the shard router to apportion across shards.
    pub fn overlap_weight(&self, region: &colr_geo::Region, kind_filter: Option<u16>) -> f64 {
        let state = self.state.read().clone();
        let mut w: f64 = state
            .levels
            .iter()
            .map(|l| l.query_weight(region, kind_filter))
            .sum();
        w += state
            .l0
            .snapshot()
            .iter()
            .filter(|(m, _)| {
                kind_filter.is_none_or(|k| m.kind == k) && region.contains_point(&m.location)
            })
            .count() as f64;
        w
    }

    // ------------------------------------------------------------------
    // Query execution
    // ------------------------------------------------------------------

    /// Processes `query` across the level structure — the LSM analogue of
    /// [`crate::tree::ColrTree::execute`].
    ///
    /// The degenerate configuration (single passthrough level, empty L0)
    /// forwards to the monolithic executor with the caller's RNG untouched,
    /// replaying it bit-identically. Otherwise the sample target splits
    /// across components by live weight (largest-remainder apportionment)
    /// and each component runs under an independent RNG stream derived from
    /// one draw of the caller's RNG.
    pub fn execute<P, R>(
        &self,
        query: &Query,
        mode: Mode,
        probe: &P,
        now: Timestamp,
        rng: &mut R,
    ) -> QueryOutput
    where
        P: ProbeService + ?Sized,
        R: Rng + ?Sized,
    {
        let state = self.state.read().clone();
        if state.degenerate() {
            return state.levels[0].tree().execute(query, mode, probe, now, rng);
        }
        self.advance_state(&state, now);
        let l0_cands = state.l0.candidates(query);
        self.exec_layered(
            &state,
            l0_cands,
            Some(&state.l0),
            query,
            mode,
            probe,
            now,
            rng,
            &mut Vec::new(),
        )
    }

    /// Captures a frozen cut for batch execution. The caller is expected to
    /// [`LsmTree::advance`] to the batch instant first, exactly like the
    /// monolithic frozen path.
    pub fn freeze(&self) -> LsmSnapshot {
        let state = self.state.read().clone();
        let l0 = state.l0.snapshot();
        LsmSnapshot { state, l0 }
    }

    /// [`LsmTree::execute`] against a frozen snapshot: no component advances
    /// its window and probe results are returned (global ids) for a deferred
    /// [`LsmTree::apply_deferred`] instead of being cached mid-query.
    pub fn execute_frozen<P, R>(
        &self,
        snap: &LsmSnapshot,
        query: &Query,
        mode: Mode,
        probe: &P,
        now: Timestamp,
        rng: &mut R,
    ) -> (QueryOutput, Vec<Reading>)
    where
        P: ProbeService + ?Sized,
        R: Rng + ?Sized,
    {
        if snap.state.degenerate() {
            return snap.state.levels[0]
                .tree()
                .execute_frozen(query, mode, probe, now, rng);
        }
        let mut deferred = Vec::new();
        let l0_cands: Vec<(SensorMeta, Option<CachedEntry>)> = snap
            .l0
            .iter()
            .filter(|(m, _)| query.matches_sensor(m))
            .cloned()
            .collect();
        let out = self.exec_layered(
            &snap.state,
            l0_cands,
            None,
            query,
            mode,
            probe,
            now,
            rng,
            &mut deferred,
        );
        (out, deferred)
    }

    /// Applies deferred probe results (global ids) from frozen executions,
    /// routing each reading to wherever its sensor lives *now* — readings of
    /// sensors merged mid-batch land in the new level, retired ones are
    /// discarded. Returns the number of readings cached.
    pub fn apply_deferred(&self, readings: &[Reading], now: Timestamp) -> usize {
        if readings.is_empty() {
            return 0;
        }
        let state = self.state.read();
        let retired = self.retired.lock();
        let directory = self.directory.lock();
        let mut per_level: HashMap<u64, Vec<Reading>> = HashMap::new();
        let mut l0_readings = Vec::new();
        for r in readings {
            if retired.contains(&r.sensor.0) {
                continue;
            }
            match directory.get(&r.sensor.0) {
                Some(SensorLoc::L0) => l0_readings.push(*r),
                Some(&SensorLoc::Level { key, local }) => {
                    let mut local_r = *r;
                    local_r.sensor = SensorId(local);
                    per_level.entry(key).or_default().push(local_r);
                }
                None => {}
            }
        }
        drop(directory);
        drop(retired);
        let mut inserted = 0;
        for level in &state.levels {
            if let Some(batch) = per_level.remove(&level.key()) {
                inserted += level.tree().apply_readings(&batch, now);
            }
        }
        for r in l0_readings {
            inserted += state.l0.insert_reading(r, now);
        }
        inserted
    }

    fn advance_state(&self, state: &LsmState, now: Timestamp) {
        for level in &state.levels {
            level.tree().advance(now);
        }
        state.l0.advance(now);
    }

    /// Layered execution over one snapshot. `l0_live` is `Some` for the
    /// interactive path (immediate write-back into L0); `None` freezes L0
    /// and pushes probe results into `deferred` (as do the level trees).
    #[allow(clippy::too_many_arguments)]
    fn exec_layered<P, R>(
        &self,
        state: &LsmState,
        l0_cands: Vec<(SensorMeta, Option<CachedEntry>)>,
        l0_live: Option<&L0Level>,
        query: &Query,
        mode: Mode,
        probe: &P,
        now: Timestamp,
        rng: &mut R,
        deferred: &mut Vec<Reading>,
    ) -> QueryOutput
    where
        P: ProbeService + ?Sized,
        R: Rng + ?Sized,
    {
        let frozen = l0_live.is_none();
        // Component shares. Levels keep their state order; L0 is the last
        // component. Only Mode::Colr with an explicit target is layered —
        // other modes visit every component with the query unchanged.
        let shares: Vec<Option<usize>> = match (mode, query.sample_size) {
            (Mode::Colr, Some(r)) => {
                let mut targets: Vec<(usize, f64)> = Vec::new();
                for (i, level) in state.levels.iter().enumerate() {
                    let w = level.query_weight(&query.region, query.kind_filter);
                    if w > 0.0 {
                        targets.push((i, w));
                    }
                }
                if !l0_cands.is_empty() {
                    targets.push((state.levels.len(), l0_cands.len() as f64));
                }
                let r_int = stochastic_round(r, rng);
                let split = apportion(r_int, &targets);
                let mut shares = vec![Some(0); state.levels.len() + 1];
                for (&(component, _), share) in targets.iter().zip(split) {
                    shares[component] = Some(share);
                }
                shares
            }
            _ => vec![None; state.levels.len() + 1],
        };
        // One draw of the caller's RNG seeds every component's independent
        // stream, so results do not depend on component execution order.
        let base = rng.next_u64();
        let mut groups = Vec::new();
        let mut readings = Vec::new();
        let mut stats = QueryStats::default();
        for (i, level) in state.levels.iter().enumerate() {
            if level.is_empty() || shares[i] == Some(0) {
                continue;
            }
            let sub = match shares[i] {
                Some(share) => query.clone().with_sample_size(share as f64),
                None => query.clone(),
            };
            let mut comp_rng = StdRng::seed_from_u64(mix(base, i as u64 + 1));
            let lp = LevelProbe {
                inner: probe,
                level: level.as_ref(),
            };
            let mut out = if frozen {
                let (out, def) = level
                    .tree()
                    .execute_frozen(&sub, mode, &lp, now, &mut comp_rng);
                deferred.extend(def.into_iter().map(|mut r| {
                    r.sensor = level.global_id(r.sensor);
                    r
                }));
                out
            } else {
                level.tree().execute(&sub, mode, &lp, now, &mut comp_rng)
            };
            for r in &mut out.readings {
                r.sensor = level.global_id(r.sensor);
            }
            groups.append(&mut out.groups);
            readings.append(&mut out.readings);
            stats.merge(&out.stats);
        }
        let l0_component = state.levels.len();
        if shares[l0_component] != Some(0) {
            let mut comp_rng = StdRng::seed_from_u64(mix(base, l0_component as u64 + 1));
            if let Some((group, mut got)) = self.exec_l0(
                &l0_cands,
                l0_live,
                query,
                mode,
                probe,
                now,
                &mut comp_rng,
                shares[l0_component],
                deferred,
                &mut stats,
            ) {
                groups.push(group);
                readings.append(&mut got);
            }
        }
        let latency_ms = self.config.cost.latency_ms(&stats);
        QueryOutput {
            groups,
            readings,
            stats,
            latency_ms,
        }
    }

    /// Executes the L0 component: a flat scan with Algorithm 1's
    /// availability-compensated sampling when a share is assigned, cache-first
    /// collection otherwise. Returns `None` when L0 contributes no group.
    #[allow(clippy::too_many_arguments)]
    fn exec_l0<P, R>(
        &self,
        cands: &[(SensorMeta, Option<CachedEntry>)],
        l0_live: Option<&L0Level>,
        query: &Query,
        mode: Mode,
        probe: &P,
        now: Timestamp,
        rng: &mut R,
        share: Option<usize>,
        deferred: &mut Vec<Reading>,
        stats: &mut QueryStats,
    ) -> Option<(GroupResult, Vec<Reading>)>
    where
        P: ProbeService + ?Sized,
        R: Rng + ?Sized,
    {
        if cands.is_empty() {
            return None;
        }
        let n = cands.len();
        stats.entries_scanned += n as u64;
        // Selection: apportioned share with availability oversampling
        // (Algorithm 1 applied to a flat level), or everything.
        let mut order: Vec<usize> = (0..n).collect();
        let (selected, target) = match share {
            Some(r) => {
                let target = r.min(n);
                let avail_mean = cands.iter().map(|(m, _)| m.availability).sum::<f64>() / n as f64;
                let attempt =
                    stochastic_round(target as f64 / avail_mean.max(MIN_AVAILABILITY), rng).min(n);
                for i in 0..attempt {
                    let j = rng.random_range(i..n);
                    order.swap(i, j);
                }
                (&order[..attempt], target as f64)
            }
            None => (&order[..n], n as f64),
        };
        if selected.is_empty() {
            return None;
        }
        let mut readings = Vec::with_capacity(selected.len());
        let mut bbox: Option<colr_geo::Rect> = None;
        let mut to_probe = Vec::new();
        let mut cached_used = 0u64;
        for &i in selected {
            let (meta, entry) = &cands[i];
            match bbox.as_mut() {
                Some(b) => b.expand_to_point(&meta.location),
                None => bbox = Some(colr_geo::Rect::new(meta.location, meta.location)),
            }
            let fresh = match (mode, entry) {
                (Mode::RTree, _) => None,
                (_, Some(e)) if e.reading.is_fresh(now, query.staleness) => Some(e.reading),
                _ => None,
            };
            match fresh {
                Some(r) => {
                    cached_used += 1;
                    readings.push(r);
                }
                None => to_probe.push(meta.id),
            }
        }
        stats.readings_from_cache += cached_used;
        let probed = self.probe_global(&to_probe, probe, query, now, stats);
        if mode != Mode::RTree {
            match l0_live {
                Some(l0) => {
                    let mut inserted = 0;
                    for r in &probed {
                        inserted += l0.insert_reading(*r, now);
                    }
                    stats.cache_inserts += inserted as u64;
                }
                None => deferred.extend_from_slice(&probed),
            }
        }
        readings.extend(probed);
        let mut agg = PartialAgg::empty();
        for r in &readings {
            agg.insert(r.value);
        }
        let group = GroupResult {
            node: L0_GROUP_NODE,
            bbox: bbox.expect("selected is non-empty"),
            agg,
            from_cache: to_probe.is_empty() && cached_used > 0,
            target,
            results: readings.len() as u64,
            hist: None,
        };
        Some((group, readings))
    }

    /// Probes global ids with the same accounting as the tree executors'
    /// probe path: one fault-aware batch within the query's remaining
    /// deadline budget, stats charged per the shared cost model.
    fn probe_global<P: ProbeService + ?Sized>(
        &self,
        ids: &[SensorId],
        probe: &P,
        query: &Query,
        now: Timestamp,
        stats: &mut QueryStats,
    ) -> Vec<Reading> {
        if ids.is_empty() {
            return Vec::new();
        }
        let budget = query
            .probe_deadline
            .millis()
            .saturating_sub(stats.retry_backoff_ms);
        let report = probe.probe_batch_report(ids, now, budget);
        debug_assert_eq!(report.outcomes.len(), ids.len());
        stats.sensors_probed += ids.len() as u64;
        stats.probes_retried += report.retries_issued;
        stats.retry_waves += report.retry_waves;
        stats.retry_backoff_ms += report.backoff_wait_ms;
        stats.breaker_skipped += report.breaker_skipped;
        stats.deadline_clipped += report.deadline_clipped;
        let mut readings = Vec::with_capacity(ids.len());
        let mut failed = 0u64;
        for outcome in report.outcomes {
            match outcome {
                Some(r) => readings.push(r),
                None => failed += 1,
            }
        }
        stats.probes_failed += failed;
        let telem = crate::telem::query();
        telem.probes_issued.add(ids.len() as u64);
        telem.probes_failed.add(failed);
        telem.probe_batch_size.observe(ids.len() as u64);
        let cost = &self.config.cost;
        let waves = if cost.probe_parallelism == 0 {
            ids.len() as u64
        } else {
            (ids.len() as u64).div_ceil(cost.probe_parallelism)
        };
        stats.probe_waves += waves + report.retry_waves;
        readings
    }

    // ------------------------------------------------------------------
    // Merge
    // ------------------------------------------------------------------

    /// Compacts L0 and a trailing run of small or heavily tombstoned levels
    /// into one freshly bulk-built level, carrying still-fresh cached
    /// readings across. Queries keep running against the old cut throughout;
    /// publication is one `Arc` swap. Returns what happened (a no-op report
    /// when there is nothing to compact).
    ///
    /// Safe to call from a background thread; merges serialise on an
    /// internal lock.
    pub fn merge(&self, now: Timestamp) -> MergeReport {
        let _serial = self.merge_lock.lock();
        let start = std::time::Instant::now();
        let state = self.state.read().clone();
        // The batch cut: live L0 sensors at merge start. Sensors registered
        // after this point stay in L0 across the publication.
        let batch = state.l0.snapshot();
        let batch_ids: HashSet<u32> = batch.iter().map(|(m, _)| m.id.0).collect();

        // Absorb the trailing (newest, smallest) run of levels while each is
        // small relative to the pool being merged, or mostly tombstoned.
        let mut pool = batch.len();
        let mut absorb_from = state.levels.len();
        while absorb_from > 0 {
            let level = &state.levels[absorb_from - 1];
            let half_dead = !level.is_empty() && level.tombstone_count() * 2 >= level.len() as u64;
            let small = level.live() < self.lsm.level_ratio.max(2) * pool.max(1);
            if small || half_dead {
                pool += level.live();
                absorb_from -= 1;
            } else {
                break;
            }
        }
        let absorbed = &state.levels[absorb_from..];
        if batch.is_empty() && absorbed.iter().all(|l| l.tombstone_count() == 0) {
            // Nothing new and nothing to purge: leave the structure alone
            // rather than churn identical levels.
            return MergeReport {
                levels_after: state.levels.len(),
                l0_after: state.l0.live(),
                ..MergeReport::default()
            };
        }

        // Build the merged level off to the side.
        let mut dropped: Vec<u32> = Vec::new();
        let mut metas: Vec<SensorMeta> = Vec::new();
        for level in absorbed {
            metas.extend(level.live_global_metas());
            dropped.extend(
                (0..level.len())
                    .filter(|&j| level.is_tombstoned(SensorId(j as u32)))
                    .map(|j| level.global_id(SensorId(j as u32)).0),
            );
        }
        metas.extend(batch.iter().map(|(m, _)| *m));
        metas.sort_by_key(|m| m.id.0);
        let key = self.next_level_key.fetch_add(1, Ordering::AcqRel);
        let merge_ordinal = self.merges.fetch_add(1, Ordering::AcqRel) + 1;
        let new_level = Arc::new(LsmLevel::build(
            key,
            &metas,
            self.config.clone(),
            mix(self.seed, merge_ordinal),
        ));
        new_level.tree().advance(now);

        // Carry-over: absorbed levels' cached readings plus L0's, translated
        // to the new level's local ids; `restore_entries` drops anything
        // expired, out of window, or belonging to a dropped sensor.
        let mut carry: Vec<CachedEntry> = Vec::new();
        for level in absorbed {
            carry.extend(level.cached_entries_global());
        }
        carry.extend(batch.iter().filter_map(|(_, e)| *e));
        let local_entries: Vec<CachedEntry> = carry
            .into_iter()
            .filter_map(|mut e| {
                new_level.local_of(e.reading.sensor).map(|local| {
                    e.reading.sensor = local;
                    e
                })
            })
            .collect();
        let carried = new_level.tree().restore_entries(&local_entries, now);

        // Publish: swap the state under the write lock, re-route the
        // directory, and re-apply any retire that raced the build.
        let (levels_after, l0_after) = {
            let mut published = self.state.write();
            let mut retired = self.retired.lock();
            for &id in retired.iter() {
                if let Some(local) = new_level.local_of(SensorId(id)) {
                    new_level.tombstone(local);
                }
            }
            dropped.extend(state.l0.tombstoned_ids());
            let (rest, rest_entries) = state.l0.drain_merged(&batch_ids);
            let new_l0 = Arc::new(L0Level::with_contents(rest, rest_entries));
            let mut levels: Vec<Arc<LsmLevel>> = state.levels[..absorb_from].to_vec();
            levels.push(new_level.clone());
            let mut directory = self.directory.lock();
            for (j, m) in new_level.tree().sensors().iter().enumerate() {
                let global = new_level.global_id(m.id).0;
                debug_assert_eq!(m.id.index(), j);
                directory.insert(
                    global,
                    SensorLoc::Level {
                        key,
                        local: j as u32,
                    },
                );
            }
            for id in &dropped {
                directory.remove(id);
                retired.remove(id);
            }
            let l0_after = new_l0.live();
            let levels_after = levels.len();
            *published = Arc::new(LsmState { levels, l0: new_l0 });
            (levels_after, l0_after)
        };

        let report = MergeReport {
            absorbed_levels: absorbed.len(),
            merged_sensors: new_level.live(),
            carried_entries: carried,
            dropped_tombstones: dropped.len(),
            duration_us: start.elapsed().as_micros() as u64,
            levels_after,
            l0_after,
        };
        let t = crate::telem::lsm();
        t.merges.inc();
        t.merge_duration_us.observe(report.duration_us);
        t.merge_carryover.add(report.carried_entries as u64);
        t.merge_dropped.add(report.dropped_tombstones as u64);
        self.publish_gauges();
        report
    }

    fn publish_gauges(&self) {
        let s = self.stats();
        let t = crate::telem::lsm();
        t.levels.set(s.levels as i64);
        t.l0_occupancy.set(s.l0_occupancy as i64);
        t.live_sensors.set(s.live_sensors as i64);
        t.tombstones.set(s.tombstones as i64);
    }
}

/// Largest-remainder apportionment of `r` across `targets` by weight —
/// the same scheme the shard router uses across shards, applied here across
/// levels: floors first, then one leftover unit per highest fractional part
/// (ties to the lower component index). Deterministic and sums to `r`.
fn apportion(r: usize, targets: &[(usize, f64)]) -> Vec<usize> {
    let total: f64 = targets.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        let mut shares = vec![0; targets.len()];
        if let Some(first) = shares.first_mut() {
            *first = r;
        }
        return shares;
    }
    let ideals: Vec<f64> = targets.iter().map(|&(_, w)| r as f64 * w / total).collect();
    let mut shares: Vec<usize> = ideals.iter().map(|&x| x.floor() as usize).collect();
    let assigned: usize = shares.iter().sum();
    let mut order: Vec<usize> = (0..targets.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideals[a] - ideals[a].floor();
        let fb = ideals[b] - ideals[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(targets[a].0.cmp(&targets[b].0))
    });
    for i in 0..r.saturating_sub(assigned) {
        shares[order[i % order.len()]] += 1;
    }
    shares
}

/// splitmix64 finaliser: derives an independent component seed from one base
/// draw, matching the engine's per-query seed derivation discipline.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests;
