//! The data-collection boundary.
//!
//! COLR-Tree *pulls* data from sensors on demand during query processing.
//! [`ProbeService`] is the trait the index calls at probe points; the
//! `colr-sensors` crate provides the simulated live network implementation
//! (Bernoulli availability, spatially correlated values), and tests use small
//! scripted implementations. Fault-aware services (see
//! [`crate::resilient::ResilientProber`]) additionally report retry and
//! breaker accounting through [`ProbeReport`].

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::reading::{Reading, SensorId};
use crate::time::Timestamp;

/// The outcome of one fault-aware probe batch: per-sensor results plus the
/// accounting the latency model and degradation reports need.
///
/// Plain services leave every extra field zero; `outcomes` alone is the
/// `probe_batch` contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeReport {
    /// One outcome per requested id, in order (`None` = final failure).
    pub outcomes: Vec<Option<Reading>>,
    /// Individual probes re-issued by retry waves.
    pub retries_issued: u64,
    /// Retry waves after the primary wave; each costs one modelled RTT.
    pub retry_waves: u64,
    /// Cumulative simulated backoff waited before retry waves, ms.
    pub backoff_wait_ms: u64,
    /// Sensors skipped because their circuit breaker was open.
    pub breaker_skipped: u64,
    /// Failed sensors whose retries were abandoned on the deadline budget.
    pub deadline_clipped: u64,
}

impl ProbeReport {
    /// Wraps plain outcomes with zeroed fault-tolerance accounting.
    pub fn plain(outcomes: Vec<Option<Reading>>) -> Self {
        ProbeReport {
            outcomes,
            ..ProbeReport::default()
        }
    }
}

/// A live collection endpoint for a set of registered sensors.
///
/// A probe of a sensor either yields a fresh [`Reading`] or `None` when the
/// sensor is unavailable (disconnected, failed, resource-constrained — the
/// paper's Section I heterogeneity). Probes issued in one `probe_batch` call
/// are considered concurrent by the latency model.
///
/// `probe_batch` takes `&self` so one service can serve many query threads
/// at once; implementations keep any bookkeeping behind interior mutability
/// (atomics or a lock).
pub trait ProbeService {
    /// Probes every sensor in `ids` at simulated instant `now`, returning one
    /// outcome per id, in order.
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>>;

    /// Fault-aware variant: like `probe_batch`, but may spend up to
    /// `retry_budget_ms` of simulated time on retries and reports the
    /// retry/breaker accounting alongside the outcomes. The default
    /// implementation performs a single wave with no retries, so plain
    /// services need only implement `probe_batch`.
    fn probe_batch_report(
        &self,
        ids: &[SensorId],
        now: Timestamp,
        retry_budget_ms: u64,
    ) -> ProbeReport {
        let _ = retry_budget_ms;
        ProbeReport::plain(self.probe_batch(ids, now))
    }
}

impl<P: ProbeService + ?Sized> ProbeService for &P {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        (**self).probe_batch(ids, now)
    }

    fn probe_batch_report(
        &self,
        ids: &[SensorId],
        now: Timestamp,
        retry_budget_ms: u64,
    ) -> ProbeReport {
        (**self).probe_batch_report(ids, now, retry_budget_ms)
    }
}

impl<P: ProbeService + ?Sized> ProbeService for &mut P {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        (**self).probe_batch(ids, now)
    }

    fn probe_batch_report(
        &self,
        ids: &[SensorId],
        now: Timestamp,
        retry_budget_ms: u64,
    ) -> ProbeReport {
        (**self).probe_batch_report(ids, now, retry_budget_ms)
    }
}

/// A probe service for tests: every sensor always answers with a fixed value
/// equal to its id, full expiry `expiry_ms`, timestamped `now`.
#[derive(Debug, Clone)]
pub struct AlwaysAvailable {
    /// Expiry duration applied to produced readings, in milliseconds.
    pub expiry_ms: u64,
}

impl ProbeService for AlwaysAvailable {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        ids.iter()
            .map(|&id| {
                Some(Reading {
                    sensor: id,
                    value: id.0 as f64,
                    timestamp: now,
                    expires_at: now + crate::time::TimeDelta::from_millis(self.expiry_ms),
                })
            })
            .collect()
    }
}

/// A probe service for tests that fails deterministically per *(sensor,
/// probe ordinal)*: the `n`-th probe of sensor `s` (1-based) fails iff
/// `(s + n) % k == 0`.
///
/// The failure pattern depends only on how many times each individual
/// sensor has been probed — not on batch composition, interleaving, or
/// scheduling — so results are identical whether a workload runs on one
/// thread or sixteen (`Portal::execute_many` parity). The `s` offset
/// staggers the phase so a single wave over many sensors still sees ~1/k
/// of them fail.
#[derive(Debug)]
pub struct FailEveryKth {
    inner: AlwaysAvailable,
    k: u64,
    seen: Mutex<HashMap<u32, u64>>,
}

impl Clone for FailEveryKth {
    fn clone(&self) -> Self {
        FailEveryKth {
            inner: self.inner.clone(),
            k: self.k,
            seen: Mutex::new(self.seen.lock().clone()),
        }
    }
}

impl FailEveryKth {
    /// Fails every `k`-th probe of each sensor (phase-staggered by sensor
    /// id); `k == 0` never fails.
    pub fn new(expiry_ms: u64, k: u64) -> Self {
        FailEveryKth {
            inner: AlwaysAvailable { expiry_ms },
            k,
            seen: Mutex::new(HashMap::new()),
        }
    }
}

impl ProbeService for FailEveryKth {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        let base = self.inner.probe_batch(ids, now);
        let mut seen = self.seen.lock();
        ids.iter()
            .zip(base)
            .map(|(&id, r)| {
                let ordinal = seen.entry(id.0).or_insert(0);
                *ordinal += 1;
                if self.k > 0 && (id.0 as u64 + *ordinal).is_multiple_of(self.k) {
                    None
                } else {
                    r
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_available_yields_all() {
        let svc = AlwaysAvailable { expiry_ms: 1_000 };
        let ids = [SensorId(0), SensorId(5)];
        let out = svc.probe_batch(&ids, Timestamp(10));
        assert_eq!(out.len(), 2);
        let r = out[1].unwrap();
        assert_eq!(r.sensor, SensorId(5));
        assert_eq!(r.value, 5.0);
        assert_eq!(r.timestamp, Timestamp(10));
        assert_eq!(r.expires_at, Timestamp(1_010));
    }

    #[test]
    fn default_report_wraps_probe_batch() {
        let svc = AlwaysAvailable { expiry_ms: 1_000 };
        let ids = [SensorId(3), SensorId(4)];
        let report = svc.probe_batch_report(&ids, Timestamp(10), 5_000);
        assert_eq!(report.outcomes, svc.probe_batch(&ids, Timestamp(10)));
        assert_eq!(report.retries_issued, 0);
        assert_eq!(report.retry_waves, 0);
        assert_eq!(report.backoff_wait_ms, 0);
        assert_eq!(report.breaker_skipped, 0);
        assert_eq!(report.deadline_clipped, 0);
    }

    #[test]
    fn fail_every_kth_fails_deterministically() {
        // First probe of each sensor (ordinal 1): (id + 1) % 3 == 0 fails.
        let svc = FailEveryKth::new(1_000, 3);
        let ids: Vec<SensorId> = (0..6).map(SensorId).collect();
        let out = svc.probe_batch(&ids, Timestamp(0));
        let failures: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        assert_eq!(failures, vec![2, 5]);
    }

    #[test]
    fn fail_pattern_is_per_sensor_not_global() {
        // Sensor 0 with k = 2 fails on its 2nd, 4th, ... probes regardless
        // of how many other sensors are probed in between.
        let svc = FailEveryKth::new(1_000, 2);
        let s0 = [SensorId(0)];
        let pattern: Vec<bool> = (0..4)
            .map(|i| {
                // Interleave unrelated probes that must not shift s0's phase.
                svc.probe_batch(&[SensorId(9), SensorId(10)], Timestamp(i));
                svc.probe_batch(&s0, Timestamp(i))[0].is_some()
            })
            .collect();
        assert_eq!(pattern, vec![true, false, true, false]);
    }

    #[test]
    fn fail_pattern_is_composition_independent() {
        // The same per-sensor probe sequence yields the same outcomes
        // whether sensors are probed together or in separate batches.
        let joint = FailEveryKth::new(1_000, 3);
        let split = FailEveryKth::new(1_000, 3);
        let ids: Vec<SensorId> = (0..8).map(SensorId).collect();
        for round in 0..6u64 {
            let a = joint.probe_batch(&ids, Timestamp(round));
            let b: Vec<Option<Reading>> = ids
                .iter()
                .flat_map(|&id| split.probe_batch(&[id], Timestamp(round)))
                .collect();
            assert_eq!(a, b, "round {round}");
        }
    }
}
