//! The data-collection boundary.
//!
//! COLR-Tree *pulls* data from sensors on demand during query processing.
//! [`ProbeService`] is the trait the index calls at probe points; the
//! `colr-sensors` crate provides the simulated live network implementation
//! (Bernoulli availability, spatially correlated values), and tests use small
//! scripted implementations.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::reading::{Reading, SensorId};
use crate::time::Timestamp;

/// A live collection endpoint for a set of registered sensors.
///
/// A probe of a sensor either yields a fresh [`Reading`] or `None` when the
/// sensor is unavailable (disconnected, failed, resource-constrained — the
/// paper's Section I heterogeneity). Probes issued in one `probe_batch` call
/// are considered concurrent by the latency model.
///
/// `probe_batch` takes `&self` so one service can serve many query threads
/// at once; implementations keep any bookkeeping behind interior mutability
/// (atomics or a lock).
pub trait ProbeService {
    /// Probes every sensor in `ids` at simulated instant `now`, returning one
    /// outcome per id, in order.
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>>;
}

impl<P: ProbeService + ?Sized> ProbeService for &P {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        (**self).probe_batch(ids, now)
    }
}

impl<P: ProbeService + ?Sized> ProbeService for &mut P {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        (**self).probe_batch(ids, now)
    }
}

/// A probe service for tests: every sensor always answers with a fixed value
/// equal to its id, full expiry `expiry_ms`, timestamped `now`.
#[derive(Debug, Clone)]
pub struct AlwaysAvailable {
    /// Expiry duration applied to produced readings, in milliseconds.
    pub expiry_ms: u64,
}

impl ProbeService for AlwaysAvailable {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        ids.iter()
            .map(|&id| {
                Some(Reading {
                    sensor: id,
                    value: id.0 as f64,
                    timestamp: now,
                    expires_at: now + crate::time::TimeDelta::from_millis(self.expiry_ms),
                })
            })
            .collect()
    }
}

/// A probe service for tests that deterministically fails every `k`-th probe
/// request (1-based counting across calls; the counter is atomic so shared
/// use from multiple threads stays consistent).
#[derive(Debug)]
pub struct FailEveryKth {
    inner: AlwaysAvailable,
    k: u64,
    issued: AtomicU64,
}

impl Clone for FailEveryKth {
    fn clone(&self) -> Self {
        FailEveryKth {
            inner: self.inner.clone(),
            k: self.k,
            issued: AtomicU64::new(self.issued.load(Ordering::Relaxed)),
        }
    }
}

impl FailEveryKth {
    /// Fails every `k`-th probe; `k == 0` never fails.
    pub fn new(expiry_ms: u64, k: u64) -> Self {
        FailEveryKth {
            inner: AlwaysAvailable { expiry_ms },
            k,
            issued: AtomicU64::new(0),
        }
    }
}

impl ProbeService for FailEveryKth {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        let base = self.inner.probe_batch(ids, now);
        base.into_iter()
            .map(|r| {
                let issued = self.issued.fetch_add(1, Ordering::Relaxed) + 1;
                if self.k > 0 && issued.is_multiple_of(self.k) {
                    None
                } else {
                    r
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_available_yields_all() {
        let svc = AlwaysAvailable { expiry_ms: 1_000 };
        let ids = [SensorId(0), SensorId(5)];
        let out = svc.probe_batch(&ids, Timestamp(10));
        assert_eq!(out.len(), 2);
        let r = out[1].unwrap();
        assert_eq!(r.sensor, SensorId(5));
        assert_eq!(r.value, 5.0);
        assert_eq!(r.timestamp, Timestamp(10));
        assert_eq!(r.expires_at, Timestamp(1_010));
    }

    #[test]
    fn fail_every_kth_fails_deterministically() {
        let svc = FailEveryKth::new(1_000, 3);
        let ids: Vec<SensorId> = (0..6).map(SensorId).collect();
        let out = svc.probe_batch(&ids, Timestamp(0));
        let failures: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        assert_eq!(failures, vec![2, 5]);
    }

    #[test]
    fn fail_counter_spans_calls() {
        let svc = FailEveryKth::new(1_000, 2);
        let a = svc.probe_batch(&[SensorId(0)], Timestamp(0));
        let b = svc.probe_batch(&[SensorId(1)], Timestamp(0));
        assert!(a[0].is_some());
        assert!(b[0].is_none());
    }
}
