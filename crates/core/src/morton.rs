//! Morton (Z-order) space-filling-curve grouping — the flat-tree baseline.
//!
//! The bench matrix needs a layout that is *cheap to build and flat to scan*
//! so the COLR-Tree's k-means clustering can be shown to earn its keep. The
//! classic candidate is a Z-order curve: quantise each sensor location onto a
//! 2^16 × 2^16 grid over the fleet's bounding box, interleave the coordinate
//! bits into a 32-bit Morton key, sort, and cut the sorted run into
//! consecutive chunks. Chunks become leaves; the usual bottom-up grouping
//! then stacks internal levels on top. The result is a valid `ColrTree`
//! (every invariant holds) whose leaves follow the curve instead of k-means
//! clusters — typically with more elongated, overlapping MBRs, which is
//! exactly the contrast the `hotpath` bench quantifies.

use colr_geo::{Point, Rect};

/// Interleaves the low 16 bits of `x` (even positions) and `y` (odd
/// positions) into a 32-bit Morton key.
#[inline]
pub fn morton_key(x: u16, y: u16) -> u32 {
    spread16(x) | (spread16(y) << 1)
}

/// Spreads the 16 bits of `v` onto the even bit positions of a `u32`.
#[inline]
fn spread16(v: u16) -> u32 {
    let mut v = v as u32;
    v = (v | (v << 8)) & 0x00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

/// Quantises `p` onto a 2^16 grid over `bounds` and returns its Morton key.
/// Degenerate bounds (zero width or height) collapse that axis to 0.
#[inline]
pub fn morton_of(p: &Point, bounds: &Rect) -> u32 {
    let qx = quantise(p.x, bounds.min.x, bounds.max.x);
    let qy = quantise(p.y, bounds.min.y, bounds.max.y);
    morton_key(qx, qy)
}

#[inline]
fn quantise(v: f64, lo: f64, hi: f64) -> u16 {
    let span = hi - lo;
    if span <= 0.0 {
        return 0;
    }
    // Scale into [0, 65535]; clamp shields against out-of-bounds points.
    let t = ((v - lo) / span * 65535.0).clamp(0.0, 65535.0);
    t as u16
}

/// Groups `items` (indices into `points`) into runs of at most `group_size`
/// consecutive positions along the Z-order curve. Ties on the Morton key are
/// broken by item index, so the grouping is deterministic regardless of the
/// caller's ordering.
pub fn morton_pack(points: &[Point], items: &[usize], group_size: usize) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return Vec::new();
    }
    let group_size = group_size.max(1);
    let bounds = Rect::bounding(&items.iter().map(|&i| points[i]).collect::<Vec<_>>())
        .expect("non-empty item set has a bounding rect");
    let mut keyed: Vec<(u32, usize)> = items
        .iter()
        .map(|&i| (morton_of(&points[i], &bounds), i))
        .collect();
    keyed.sort_unstable();
    keyed
        .chunks(group_size)
        .map(|chunk| chunk.iter().map(|&(_, i)| i).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_interleaves_bits() {
        assert_eq!(morton_key(0, 0), 0);
        assert_eq!(morton_key(1, 0), 0b01);
        assert_eq!(morton_key(0, 1), 0b10);
        assert_eq!(morton_key(0b11, 0b11), 0b1111);
        assert_eq!(morton_key(u16::MAX, u16::MAX), u32::MAX);
    }

    #[test]
    fn key_orders_quadrants() {
        // Z-order visits quadrants in the order SW, SE, NW, NE.
        let sw = morton_key(0, 0);
        let se = morton_key(u16::MAX, 0);
        let nw = morton_key(0, u16::MAX);
        let ne = morton_key(u16::MAX, u16::MAX);
        assert!(sw < se && se < nw && nw < ne);
    }

    #[test]
    fn quantise_handles_degenerate_axes() {
        let line = Rect::from_coords(0.0, 5.0, 10.0, 5.0);
        let k = morton_of(&Point::new(10.0, 5.0), &line);
        assert_eq!(k, morton_key(u16::MAX, 0));
    }

    #[test]
    fn pack_covers_every_item_once() {
        let points: Vec<Point> = (0..37)
            .map(|i| Point::new((i * 7 % 19) as f64, (i * 5 % 23) as f64))
            .collect();
        let items: Vec<usize> = (0..points.len()).collect();
        let groups = morton_pack(&points, &items, 8);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, items);
        assert!(groups.iter().all(|g| g.len() <= 8 && !g.is_empty()));
    }

    #[test]
    fn pack_groups_spatial_neighbours() {
        // Two well-separated clusters must not share a group.
        let mut points = Vec::new();
        for i in 0..8 {
            points.push(Point::new(i as f64 * 0.01, 0.0));
        }
        for i in 0..8 {
            points.push(Point::new(100.0 + i as f64 * 0.01, 100.0));
        }
        let items: Vec<usize> = (0..points.len()).collect();
        let groups = morton_pack(&points, &items, 8);
        assert_eq!(groups.len(), 2);
        for g in &groups {
            let left = g.iter().filter(|&&i| i < 8).count();
            assert!(left == 0 || left == g.len(), "mixed group: {g:?}");
        }
    }

    #[test]
    fn pack_is_deterministic_under_input_order() {
        let points: Vec<Point> = (0..20)
            .map(|i| Point::new((i % 5) as f64, (i / 5) as f64))
            .collect();
        let forward: Vec<usize> = (0..points.len()).collect();
        let mut backward = forward.clone();
        backward.reverse();
        assert_eq!(
            morton_pack(&points, &forward, 4),
            morton_pack(&points, &backward, 4)
        );
    }

    #[test]
    fn pack_empty_and_tiny() {
        assert!(morton_pack(&[], &[], 4).is_empty());
        let pts = [Point::new(1.0, 2.0)];
        let groups = morton_pack(&pts, &[0], 4);
        assert_eq!(groups, vec![vec![0]]);
    }
}
