//! The slot cache (Section IV).
//!
//! A slot cache maintains `m = t_max/Δ` *partial aggregates* in globally
//! aligned slots of width `Δ`. Slot `i` (an absolute index: `expiry / Δ`)
//! aggregates exactly the readings whose **expiry instants** fall in
//! `[iΔ, (i+1)Δ)`. Because every cache in the tree uses the same alignment, a
//! parent's slot `i` is the aggregate of its children's slots `i`, which is
//! what makes bottom-up incremental maintenance possible (Section IV-B).
//!
//! The window slides forward as simulated time advances: slots whose entire
//! expiry range is in the past contain only expired readings and are dropped
//! wholesale — no per-reading decrement is ever needed for expiry, only for
//! value *updates* and capacity *evictions* (handled by
//! [`SlotCache::try_remove`], which falls back to a rebuild signal when the
//! aggregate cannot be decremented).
//!
//! ## Freshness
//!
//! In addition to the paper's slot bookkeeping, each slot tracks the minimum
//! *production timestamp* of its constituents (`min_ts`). A user freshness
//! bound `S` accepts a cached slot only when `min_ts >= now - S`, i.e. every
//! constituent reading was produced within the staleness window. This is a
//! conservative *strengthening* of the paper's query-slot heuristic: it can
//! reject a borderline-usable slot but never serves data staler than
//! requested. Under removal `min_ts` stays a valid lower bound (removals can
//! only raise the true minimum).

use crate::agg::{Histogram, HistogramSpec, PartialAgg};
use crate::time::{TimeDelta, Timestamp};

/// Sizing of a slot cache: `slot_width` is the paper's `Δ`, `num_slots` its
/// `m`. The window must cover `t_max` (the maximum sensor expiry), i.e.
/// `slot_width · num_slots >= t_max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotConfig {
    /// Slot width `Δ`.
    pub slot_width: TimeDelta,
    /// Number of slots `m`.
    pub num_slots: usize,
    /// When set, every slot also maintains a value histogram with this
    /// binning, so group *distributions* (the portal's multi-resolution
    /// display) can be served from cache.
    pub histogram: Option<HistogramSpec>,
}

impl SlotConfig {
    /// Derives the configuration from a window size and slot count, the way
    /// the paper parameterises it: `Δ = t_max / m` (rounded up so the window
    /// always covers `t_max`).
    pub fn for_window(t_max: TimeDelta, num_slots: usize) -> Self {
        assert!(num_slots > 0, "need at least one slot");
        let width = t_max.millis().div_ceil(num_slots as u64).max(1);
        SlotConfig {
            slot_width: TimeDelta::from_millis(width),
            num_slots,
            histogram: None,
        }
    }

    /// Enables per-slot histograms with the given binning.
    pub fn with_histogram(mut self, spec: HistogramSpec) -> Self {
        self.histogram = Some(spec);
        self
    }

    /// Absolute slot index of an instant.
    #[inline]
    pub fn slot_of(&self, t: Timestamp) -> u64 {
        t.millis() / self.slot_width.millis()
    }

    /// The base slot (oldest slot that can still contain live readings) at
    /// `now`.
    #[inline]
    pub fn base_at(&self, now: Timestamp) -> u64 {
        self.slot_of(now)
    }
}

/// One cached partial aggregate plus its freshness watermark and per-type
/// sub-aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    /// Partial aggregate over the slot's constituent readings.
    pub agg: PartialAgg,
    /// Minimum production timestamp among constituents (conservative lower
    /// bound after removals).
    pub min_ts: Timestamp,
    /// Per-sensor-type sub-aggregates (sorted by kind). These let
    /// type-filtered queries use aggregate caches instead of bypassing them
    /// — the "per-type slot caches" extension.
    pub by_kind: Vec<(u16, PartialAgg)>,
    /// Value histogram over the slot's constituents (present only when the
    /// cache's [`SlotConfig::histogram`] is set).
    pub hist: Option<Histogram>,
}

impl Slot {
    /// A slot holding exactly one reading.
    pub fn singleton(
        value: f64,
        ts: Timestamp,
        kind: u16,
        hist_spec: Option<HistogramSpec>,
    ) -> Slot {
        let hist = hist_spec.map(|spec| {
            let mut h = spec.empty();
            h.insert(value);
            h
        });
        Slot {
            agg: PartialAgg::from_value(value),
            min_ts: ts,
            by_kind: vec![(kind, PartialAgg::from_value(value))],
            hist,
        }
    }

    /// The sub-aggregate for one sensor type (empty aggregate when the slot
    /// holds no readings of that type).
    pub fn kind_agg(&self, kind: u16) -> PartialAgg {
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, a)| *a)
            .unwrap_or_else(PartialAgg::empty)
    }

    fn kind_insert(&mut self, kind: u16, value: f64) {
        match self.by_kind.binary_search_by_key(&kind, |(k, _)| *k) {
            Ok(i) => self.by_kind[i].1.insert(value),
            Err(i) => self
                .by_kind
                .insert(i, (kind, PartialAgg::from_value(value))),
        }
    }

    /// Attempts to decrement `value` from both the total and the per-kind
    /// aggregate; leaves the slot unchanged and reports failure when either
    /// side cannot be decremented.
    fn kind_remove(&mut self, kind: u16, value: f64) -> bool {
        let Ok(i) = self.by_kind.binary_search_by_key(&kind, |(k, _)| *k) else {
            return false; // unknown kind: force a rebuild
        };
        // Trial-remove on copies so failure leaves no partial mutation.
        let mut total = self.agg;
        let mut per = self.by_kind[i].1;
        if !total.try_remove(value) || !per.try_remove(value) {
            return false;
        }
        if let Some(h) = &mut self.hist {
            if !h.try_remove(value) {
                return false;
            }
        }
        self.agg = total;
        if per.is_empty() {
            self.by_kind.remove(i);
        } else {
            self.by_kind[i].1 = per;
        }
        true
    }
}

/// Outcome of attempting an in-place decrement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// The value was removed incrementally.
    Removed,
    /// The slot exists but cannot be decremented (the value is an extreme);
    /// the owner must rebuild the slot from the level below.
    NeedsRebuild,
    /// No slot covers that expiry instant (nothing to do).
    Absent,
}

/// The per-node slot cache. Stores up to `num_slots + 1` consecutive
/// absolute slots in a ring (the `+1` covers the partially expired boundary
/// slot while the window is mid-stride).
///
/// ```
/// use colr_tree::{SlotCache, SlotConfig, TimeDelta, Timestamp};
///
/// // 8 slots covering a 10-minute window.
/// let config = SlotConfig::for_window(TimeDelta::from_mins(10), 8);
/// let mut cache = SlotCache::new(config);
///
/// // A reading worth 21.5, produced at t=1s, expiring at t=5min.
/// cache.insert(Timestamp(300_000), Timestamp(1_000), 21.5, 0);
///
/// // A query at t=60s accepting 2-minute-old data can use it...
/// let (agg, slots) = cache.usable(Timestamp(60_000), TimeDelta::from_mins(2));
/// assert_eq!(agg.count, 1);
/// assert_eq!(slots, 1);
///
/// // ...but after the window slides past the reading's slot it is gone.
/// cache.roll_to(config.base_at(Timestamp(310_000)));
/// let (agg, _) = cache.usable(Timestamp(310_000), TimeDelta::from_mins(10));
/// assert!(agg.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SlotCache {
    config: SlotConfig,
    /// Ring of `(absolute_slot_index, slot)` keyed by `abs % ring_len`.
    ring: Vec<Option<(u64, Slot)>>,
}

impl SlotCache {
    /// An empty cache with the given configuration.
    pub fn new(config: SlotConfig) -> Self {
        let ring_len = config.num_slots + 1;
        SlotCache {
            config,
            ring: vec![None; ring_len],
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &SlotConfig {
        &self.config
    }

    fn bucket(&self, abs: u64) -> usize {
        (abs % self.ring.len() as u64) as usize
    }

    /// Number of non-empty slots currently held.
    pub fn occupied_slots(&self) -> usize {
        self.ring.iter().flatten().count()
    }

    /// Returns the slot with absolute index `abs`, if present.
    pub fn slot(&self, abs: u64) -> Option<&Slot> {
        match &self.ring[self.bucket(abs)] {
            Some((a, s)) if *a == abs => Some(s),
            _ => None,
        }
    }

    /// Inserts one reading's value into the slot covering `expires_at`
    /// (sensor type 0). See [`SlotCache::insert_kind`].
    pub fn insert(&mut self, expires_at: Timestamp, ts: Timestamp, value: f64, base: u64) -> bool {
        self.insert_kind(expires_at, ts, value, 0, base)
    }

    /// Inserts one reading's value into the slot covering `expires_at`,
    /// tracking the sensor type's sub-aggregate.
    ///
    /// `base` is the tree-wide current base slot; readings that would land
    /// below it are already expired and are ignored (returns `false`).
    /// Readings beyond the window top are also ignored — the owner is
    /// expected to have rolled the window first (the paper's "slide until the
    /// youngest slot covers the reading").
    pub fn insert_kind(
        &mut self,
        expires_at: Timestamp,
        ts: Timestamp,
        value: f64,
        kind: u16,
        base: u64,
    ) -> bool {
        let abs = self.config.slot_of(expires_at);
        if abs < base || abs >= base + self.ring.len() as u64 {
            crate::flight::with(|f| f.wb_rejected += 1);
            return false;
        }
        let bucket = self.bucket(abs);
        let opened;
        match &mut self.ring[bucket] {
            Some((a, s)) if *a == abs => {
                s.agg.insert(value);
                s.kind_insert(kind, value);
                if let Some(h) = &mut s.hist {
                    h.insert(value);
                }
                if ts < s.min_ts {
                    s.min_ts = ts;
                }
                opened = false;
            }
            entry => {
                // Either empty or holds a stale (pre-roll) slot; replace.
                *entry = Some((abs, Slot::singleton(value, ts, kind, self.config.histogram)));
                opened = true;
            }
        }
        crate::flight::with(|f| f.slot_write(opened));
        true
    }

    /// Attempts to decrement `value` (sensor type 0) from the slot covering
    /// `expires_at`.
    pub fn try_remove(&mut self, expires_at: Timestamp, value: f64) -> RemoveOutcome {
        self.try_remove_kind(expires_at, value, 0)
    }

    /// Attempts to decrement `value` of sensor type `kind` from the slot
    /// covering `expires_at`; both the total and the per-type aggregate must
    /// be decrementable or the slot is left for a rebuild.
    pub fn try_remove_kind(
        &mut self,
        expires_at: Timestamp,
        value: f64,
        kind: u16,
    ) -> RemoveOutcome {
        let abs = self.config.slot_of(expires_at);
        let bucket = self.bucket(abs);
        match &mut self.ring[bucket] {
            Some((a, s)) if *a == abs => {
                if s.kind_remove(kind, value) {
                    if s.agg.is_empty() {
                        self.ring[bucket] = None;
                    }
                    RemoveOutcome::Removed
                } else {
                    RemoveOutcome::NeedsRebuild
                }
            }
            _ => RemoveOutcome::Absent,
        }
    }

    /// Replaces the slot with absolute index `abs` outright (used by slot
    /// rebuilds); an empty aggregate clears the slot.
    pub fn set_slot(&mut self, abs: u64, slot: Slot) {
        let bucket = self.bucket(abs);
        if slot.agg.is_empty() {
            if matches!(&self.ring[bucket], Some((a, _)) if *a == abs) {
                self.ring[bucket] = None;
            }
        } else {
            self.ring[bucket] = Some((abs, slot));
        }
    }

    /// Drops every slot older than `new_base` (the window slide / roll
    /// trigger). Returns the number of slots expunged.
    pub fn roll_to(&mut self, new_base: u64) -> usize {
        let mut dropped = 0;
        for entry in &mut self.ring {
            if matches!(entry, Some((a, _)) if *a < new_base) {
                *entry = None;
                dropped += 1;
            }
        }
        dropped
    }

    /// Clears the cache entirely.
    pub fn clear(&mut self) {
        self.ring.iter_mut().for_each(|e| *e = None);
    }

    /// Combines every slot usable for a query at `now` with freshness bound
    /// `staleness` (Section IV-A "Lookup"):
    ///
    /// * the slot must be **fully unexpired** (`abs·Δ >= now`) — the
    ///   partially expired boundary slot is skipped at aggregate level, and
    /// * every constituent must satisfy the freshness bound
    ///   (`min_ts >= now - staleness`).
    ///
    /// Returns the combined aggregate and the number of slots merged.
    pub fn usable(&self, now: Timestamp, staleness: TimeDelta) -> (PartialAgg, u64) {
        let bound = now.saturating_sub(staleness);
        let width = self.config.slot_width.millis();
        let mut agg = PartialAgg::empty();
        let mut used = 0;
        for entry in self.ring.iter().flatten() {
            let (abs, slot) = entry;
            if abs * width >= now.millis() && slot.min_ts >= bound {
                agg.merge(&slot.agg);
                used += 1;
            }
        }
        (agg, used)
    }

    /// Like [`SlotCache::usable`], but combines only the per-type
    /// sub-aggregates for `kind`. The freshness watermark is the slot-wide
    /// one (conservative: a stale reading of another type can disqualify a
    /// slot for this type).
    pub fn usable_kind(
        &self,
        now: Timestamp,
        staleness: TimeDelta,
        kind: u16,
    ) -> (PartialAgg, u64) {
        let bound = now.saturating_sub(staleness);
        let width = self.config.slot_width.millis();
        let mut agg = PartialAgg::empty();
        let mut used = 0;
        for entry in self.ring.iter().flatten() {
            let (abs, slot) = entry;
            if abs * width >= now.millis() && slot.min_ts >= bound {
                let k = slot.kind_agg(kind);
                if !k.is_empty() {
                    agg.merge(&k);
                    used += 1;
                }
            }
        }
        (agg, used)
    }

    /// Combines the histograms of every slot usable at `now` under the
    /// freshness bound. `None` when histograms are not configured or no
    /// usable slot holds one.
    pub fn usable_histogram(&self, now: Timestamp, staleness: TimeDelta) -> Option<Histogram> {
        let spec = self.config.histogram?;
        let bound = now.saturating_sub(staleness);
        let width = self.config.slot_width.millis();
        let mut merged = spec.empty();
        let mut any = false;
        for entry in self.ring.iter().flatten() {
            let (abs, slot) = entry;
            if abs * width >= now.millis() && slot.min_ts >= bound {
                if let Some(h) = &slot.hist {
                    merged.merge(h);
                    any = true;
                }
            }
        }
        any.then_some(merged)
    }

    /// Total weight (reading count) across all currently held slots,
    /// regardless of freshness — the cache table's aggregate `value weight`.
    pub fn total_weight(&self) -> u64 {
        self.ring.iter().flatten().map(|(_, s)| s.agg.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;

    fn cfg(width_ms: u64, slots: usize) -> SlotConfig {
        SlotConfig {
            slot_width: TimeDelta::from_millis(width_ms),
            num_slots: slots,
            histogram: None,
        }
    }

    #[test]
    fn for_window_covers_t_max() {
        let c = SlotConfig::for_window(TimeDelta::from_millis(1_000), 3);
        assert!(c.slot_width.millis() * 3 >= 1_000);
        assert_eq!(c.num_slots, 3);
        let exact = SlotConfig::for_window(TimeDelta::from_millis(900), 3);
        assert_eq!(exact.slot_width, TimeDelta::from_millis(300));
    }

    #[test]
    fn slot_of_uses_floor() {
        let c = cfg(100, 4);
        assert_eq!(c.slot_of(Timestamp(0)), 0);
        assert_eq!(c.slot_of(Timestamp(99)), 0);
        assert_eq!(c.slot_of(Timestamp(100)), 1);
    }

    #[test]
    fn insert_groups_by_expiry_slot() {
        let mut sc = SlotCache::new(cfg(100, 4));
        assert!(sc.insert(Timestamp(150), Timestamp(10), 5.0, 0));
        assert!(sc.insert(Timestamp(199), Timestamp(20), 7.0, 0));
        assert!(sc.insert(Timestamp(250), Timestamp(30), 1.0, 0));
        let s1 = sc.slot(1).unwrap();
        assert_eq!(s1.agg.count, 2);
        assert_eq!(s1.agg.sum, 12.0);
        assert_eq!(s1.min_ts, Timestamp(10));
        assert_eq!(sc.slot(2).unwrap().agg.count, 1);
        assert_eq!(sc.occupied_slots(), 2);
        assert_eq!(sc.total_weight(), 3);
    }

    #[test]
    fn insert_below_base_is_rejected() {
        let mut sc = SlotCache::new(cfg(100, 4));
        assert!(!sc.insert(Timestamp(50), Timestamp(0), 1.0, 2));
        assert_eq!(sc.occupied_slots(), 0);
    }

    #[test]
    fn insert_beyond_window_is_rejected() {
        let mut sc = SlotCache::new(cfg(100, 4)); // ring covers base..base+5
        assert!(!sc.insert(Timestamp(501), Timestamp(0), 1.0, 0));
        assert!(sc.insert(Timestamp(499), Timestamp(0), 1.0, 0));
    }

    #[test]
    fn roll_drops_old_slots_only() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(50), Timestamp(0), 1.0, 0);
        sc.insert(Timestamp(150), Timestamp(0), 2.0, 0);
        sc.insert(Timestamp(250), Timestamp(0), 3.0, 0);
        assert_eq!(sc.roll_to(2), 2);
        assert!(sc.slot(0).is_none());
        assert!(sc.slot(1).is_none());
        assert_eq!(sc.slot(2).unwrap().agg.sum, 3.0);
    }

    #[test]
    fn try_remove_midrange() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(150), Timestamp(0), 1.0, 0);
        sc.insert(Timestamp(150), Timestamp(0), 2.0, 0);
        sc.insert(Timestamp(150), Timestamp(0), 3.0, 0);
        assert_eq!(sc.try_remove(Timestamp(150), 2.0), RemoveOutcome::Removed);
        assert_eq!(sc.slot(1).unwrap().agg.count, 2);
    }

    #[test]
    fn try_remove_extreme_signals_rebuild() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(150), Timestamp(0), 1.0, 0);
        sc.insert(Timestamp(150), Timestamp(0), 3.0, 0);
        assert_eq!(
            sc.try_remove(Timestamp(150), 3.0),
            RemoveOutcome::NeedsRebuild
        );
        // State preserved for the rebuild.
        assert_eq!(sc.slot(1).unwrap().agg.count, 2);
    }

    #[test]
    fn try_remove_absent() {
        let mut sc = SlotCache::new(cfg(100, 4));
        assert_eq!(sc.try_remove(Timestamp(150), 1.0), RemoveOutcome::Absent);
    }

    #[test]
    fn remove_last_clears_slot() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(150), Timestamp(0), 1.0, 0);
        assert_eq!(sc.try_remove(Timestamp(150), 1.0), RemoveOutcome::Removed);
        assert!(sc.slot(1).is_none());
        assert_eq!(sc.occupied_slots(), 0);
    }

    #[test]
    fn usable_skips_partially_expired_boundary_slot() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(150), Timestamp(100), 1.0, 1); // slot 1: [100,200)
        sc.insert(Timestamp(250), Timestamp(100), 2.0, 1); // slot 2: [200,300)
                                                           // now = 150 sits inside slot 1 → slot 1 is partially expired, skip.
        let (agg, used) = sc.usable(Timestamp(150), TimeDelta::from_millis(1_000));
        assert_eq!(used, 1);
        assert_eq!(agg.sum, 2.0);
        // now = 100 exactly at slot 1's lower edge → slot 1 fully unexpired.
        let (agg, used) = sc.usable(Timestamp(100), TimeDelta::from_millis(1_000));
        assert_eq!(used, 2);
        assert_eq!(agg.sum, 3.0);
    }

    #[test]
    fn usable_enforces_freshness_watermark() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(250), Timestamp(10), 2.0, 0); // old production ts
        sc.insert(Timestamp(350), Timestamp(90), 5.0, 0); // fresh
        let now = Timestamp(100);
        // staleness 20ms → bound=80 → only the ts=90 slot qualifies.
        let (agg, used) = sc.usable(now, TimeDelta::from_millis(20));
        assert_eq!(used, 1);
        assert_eq!(agg.sum, 5.0);
        // staleness 95ms → bound=5 → both.
        let (agg, used) = sc.usable(now, TimeDelta::from_millis(95));
        assert_eq!(used, 2);
        assert_eq!(agg.sum, 7.0);
    }

    #[test]
    fn usable_freshness_uses_min_constituent() {
        let mut sc = SlotCache::new(cfg(100, 4));
        // Same slot: one stale constituent poisons the slot for tight bounds.
        sc.insert(Timestamp(250), Timestamp(10), 2.0, 0);
        sc.insert(Timestamp(260), Timestamp(90), 5.0, 0);
        let (agg, used) = sc.usable(Timestamp(100), TimeDelta::from_millis(20));
        assert_eq!(used, 0);
        assert!(agg.is_empty());
    }

    #[test]
    fn set_slot_replaces_and_clears() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.set_slot(
            3,
            Slot {
                agg: PartialAgg::from_values(&[1.0, 2.0]),
                min_ts: Timestamp(5),
                by_kind: vec![(0, PartialAgg::from_values(&[1.0, 2.0]))],
                hist: None,
            },
        );
        assert_eq!(sc.slot(3).unwrap().agg.count, 2);
        sc.set_slot(
            3,
            Slot {
                agg: PartialAgg::empty(),
                min_ts: Timestamp(0),
                by_kind: Vec::new(),
                hist: None,
            },
        );
        assert!(sc.slot(3).is_none());
    }

    #[test]
    fn ring_reuses_buckets_across_rolls() {
        let mut sc = SlotCache::new(cfg(100, 2)); // ring len 3
        sc.insert(Timestamp(50), Timestamp(0), 1.0, 0); // slot 0
        sc.roll_to(3);
        // Slot 3 maps to bucket 0 — the rolled-out slot 0 must not alias.
        assert!(sc.slot(3).is_none());
        assert!(sc.insert(Timestamp(350), Timestamp(300), 9.0, 3));
        assert_eq!(sc.slot(3).unwrap().agg.sum, 9.0);
        assert!(sc.slot(0).is_none());
    }

    #[test]
    fn stale_bucket_is_replaced_on_insert_without_roll() {
        // Defensive path: insert into a bucket still holding a pre-roll slot.
        let mut sc = SlotCache::new(cfg(100, 2)); // ring len 3
        sc.insert(Timestamp(50), Timestamp(0), 1.0, 0); // abs 0, bucket 0
                                                        // Window has moved to base 3 but roll_to was not called; abs 3 shares
                                                        // bucket 0.
        assert!(sc.insert(Timestamp(350), Timestamp(300), 9.0, 3));
        let s = sc.slot(3).unwrap();
        assert_eq!(s.agg.count, 1);
        assert_eq!(s.agg.sum, 9.0);
    }

    #[test]
    fn combined_aggregate_finalises_correctly() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(150), Timestamp(0), 1.0, 0);
        sc.insert(Timestamp(250), Timestamp(0), 5.0, 0);
        sc.insert(Timestamp(350), Timestamp(0), 3.0, 0);
        let (agg, _) = sc.usable(Timestamp(100), TimeDelta::from_millis(1_000));
        assert_eq!(agg.finalize(AggKind::Count), Some(3.0));
        assert_eq!(agg.finalize(AggKind::Min), Some(1.0));
        assert_eq!(agg.finalize(AggKind::Max), Some(5.0));
        assert_eq!(agg.finalize(AggKind::Avg), Some(3.0));
    }

    #[test]
    fn per_kind_subaggregates_track_inserts() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert_kind(Timestamp(150), Timestamp(0), 1.0, 1, 0);
        sc.insert_kind(Timestamp(150), Timestamp(0), 2.0, 2, 0);
        sc.insert_kind(Timestamp(160), Timestamp(0), 3.0, 1, 0);
        let slot = sc.slot(1).unwrap();
        assert_eq!(slot.agg.count, 3);
        assert_eq!(slot.kind_agg(1).count, 2);
        assert_eq!(slot.kind_agg(1).sum, 4.0);
        assert_eq!(slot.kind_agg(2).count, 1);
        assert!(slot.kind_agg(9).is_empty());
    }

    #[test]
    fn usable_kind_filters_by_type() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert_kind(Timestamp(150), Timestamp(0), 1.0, 1, 0);
        sc.insert_kind(Timestamp(250), Timestamp(0), 2.0, 2, 0);
        sc.insert_kind(Timestamp(250), Timestamp(0), 4.0, 1, 0);
        let (agg, used) = sc.usable_kind(Timestamp(100), TimeDelta::from_millis(1_000), 1);
        assert_eq!(agg.count, 2);
        assert_eq!(agg.sum, 5.0);
        assert_eq!(used, 2);
        let (agg, used) = sc.usable_kind(Timestamp(100), TimeDelta::from_millis(1_000), 2);
        assert_eq!(agg.count, 1);
        assert_eq!(used, 1);
        let (agg, used) = sc.usable_kind(Timestamp(100), TimeDelta::from_millis(1_000), 7);
        assert!(agg.is_empty());
        assert_eq!(used, 0);
    }

    #[test]
    fn kind_remove_keeps_total_and_per_kind_consistent() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert_kind(Timestamp(150), Timestamp(0), 1.0, 1, 0);
        sc.insert_kind(Timestamp(150), Timestamp(0), 2.0, 1, 0);
        sc.insert_kind(Timestamp(150), Timestamp(0), 3.0, 1, 0);
        assert_eq!(
            sc.try_remove_kind(Timestamp(150), 2.0, 1),
            RemoveOutcome::Removed
        );
        let slot = sc.slot(1).unwrap();
        assert_eq!(slot.agg.count, 2);
        assert_eq!(slot.kind_agg(1).count, 2);
        // Removing with the wrong kind forces a rebuild.
        assert_eq!(
            sc.try_remove_kind(Timestamp(150), 3.0, 9),
            RemoveOutcome::NeedsRebuild
        );
    }

    #[test]
    fn slot_histograms_track_inserts_and_lookups() {
        let spec = HistogramSpec {
            lo: 0.0,
            hi: 10.0,
            buckets: 5,
        };
        let mut sc = SlotCache::new(cfg(100, 4).with_histogram(spec));
        sc.insert(Timestamp(150), Timestamp(0), 1.0, 0);
        sc.insert(Timestamp(150), Timestamp(0), 3.0, 0);
        sc.insert(Timestamp(250), Timestamp(0), 9.0, 0);
        let h = sc
            .usable_histogram(Timestamp(100), TimeDelta::from_millis(1_000))
            .unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts(), &[1, 1, 0, 0, 1]);
        // The partially expired boundary slot is excluded, like aggregates.
        let h = sc
            .usable_histogram(Timestamp(150), TimeDelta::from_millis(1_000))
            .unwrap();
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn histograms_absent_when_not_configured() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(150), Timestamp(0), 1.0, 0);
        assert!(sc
            .usable_histogram(Timestamp(100), TimeDelta::from_millis(1_000))
            .is_none());
        assert!(sc.slot(1).unwrap().hist.is_none());
    }

    #[test]
    fn histogram_removal_keeps_counts_consistent() {
        let spec = HistogramSpec {
            lo: 0.0,
            hi: 10.0,
            buckets: 5,
        };
        let mut sc = SlotCache::new(cfg(100, 4).with_histogram(spec));
        sc.insert(Timestamp(150), Timestamp(0), 2.0, 0);
        sc.insert(Timestamp(150), Timestamp(0), 5.0, 0);
        sc.insert(Timestamp(150), Timestamp(0), 8.0, 0);
        assert_eq!(sc.try_remove(Timestamp(150), 5.0), RemoveOutcome::Removed);
        let slot = sc.slot(1).unwrap();
        assert_eq!(slot.hist.as_ref().unwrap().total(), 2);
        assert_eq!(slot.agg.count, 2);
    }

    #[test]
    fn clear_empties_cache() {
        let mut sc = SlotCache::new(cfg(100, 4));
        sc.insert(Timestamp(150), Timestamp(0), 1.0, 0);
        sc.clear();
        assert_eq!(sc.occupied_slots(), 0);
        assert_eq!(sc.total_weight(), 0);
    }
}
