//! Fault-tolerant probe layer: deadline-budgeted retries, per-sensor
//! circuit breakers, and live availability feedback.
//!
//! `ResilientProber` wraps any [`ProbeService`] and adds the collection
//! robustness the paper assumes of its portal front end (Section I:
//! "nondeterministic unavailability"):
//!
//! * **Retries** — failed probes are re-issued in waves with capped
//!   exponential backoff. All waiting happens in *simulated* time: each
//!   retry wave is probed at `now + elapsed backoff` and the wave/backoff
//!   totals are reported back so `lookup.rs` can charge them to the probe
//!   latency model. A per-query deadline budget bounds the cumulative
//!   backoff; retries that would exceed it are abandoned and counted as
//!   `deadline_clipped`.
//! * **Circuit breakers** — per-sensor closed → open (after N consecutive
//!   failures) → half-open (one trial probe once a cooldown elapses on the
//!   simulated clock). Sensors with an open breaker are skipped before the
//!   inner service is consulted at all, so persistently dead sensors stop
//!   consuming probe waves (observable as a plateau in
//!   `SimNetwork::probe_counts`).
//! * **Availability feedback** — when a [`LiveAvailability`] map is
//!   attached, every final probe outcome (including breaker skips, which
//!   are known failures) updates the live EWMA that `sampling.rs`
//!   consults in place of the frozen build-time `avail_mean`.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::avail::LiveAvailability;
use crate::probe::{ProbeReport, ProbeService};
use crate::reading::{Reading, SensorId};
use crate::telem;
use crate::time::{TimeDelta, Timestamp};

/// Tuning knobs for [`ResilientProber`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilientConfig {
    /// Maximum retry waves after the primary wave.
    pub max_retries: u32,
    /// Backoff before the first retry wave; doubles each wave.
    pub base_backoff: TimeDelta,
    /// Cap on the per-wave backoff.
    pub max_backoff: TimeDelta,
    /// Consecutive failures that trip a sensor's breaker open.
    pub breaker_threshold: u32,
    /// Simulated time an open breaker waits before a half-open trial.
    pub breaker_cooldown: TimeDelta,
    /// Deadline budget used when callers go through the plain
    /// `probe_batch` path (no explicit budget).
    pub default_retry_budget: TimeDelta,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            max_retries: 3,
            base_backoff: TimeDelta::from_millis(50),
            max_backoff: TimeDelta::from_millis(400),
            breaker_threshold: 5,
            breaker_cooldown: TimeDelta::from_secs(30),
            default_retry_budget: TimeDelta::from_secs(2),
        }
    }
}

/// Circuit-breaker states, exposed for tests and inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Probes flow through; consecutive failures are counted.
    #[default]
    Closed,
    /// Probes are skipped until the cooldown elapses.
    Open,
    /// One trial probe is in flight; success closes, failure reopens.
    HalfOpen,
}

#[derive(Debug, Clone, Copy, Default)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Timestamp,
}

#[derive(Default)]
struct BreakerTable {
    slots: Vec<Breaker>,
    open: usize,
}

impl BreakerTable {
    fn slot(&mut self, id: SensorId) -> &mut Breaker {
        let i = id.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, Breaker::default());
        }
        &mut self.slots[i]
    }
}

/// A [`ProbeService`] decorator adding retries, circuit breakers, and
/// availability feedback. See the module docs for the full contract.
pub struct ResilientProber<P> {
    inner: P,
    config: ResilientConfig,
    breakers: Mutex<BreakerTable>,
    avail: RwLock<Option<Arc<LiveAvailability>>>,
}

impl<P> ResilientProber<P> {
    pub fn new(inner: P, config: ResilientConfig) -> Self {
        ResilientProber {
            inner,
            config,
            breakers: Mutex::new(BreakerTable::default()),
            avail: RwLock::new(None),
        }
    }

    pub fn with_defaults(inner: P) -> Self {
        Self::new(inner, ResilientConfig::default())
    }

    /// The wrapped probe service (e.g. to drive a `SimNetwork` fault plan).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    pub fn config(&self) -> &ResilientConfig {
        &self.config
    }

    /// Attaches a live availability map; every subsequent probe outcome
    /// feeds its EWMAs. Pair with `ColrTree::enable_live_availability` so
    /// Algorithm 1 consumes what this prober learns.
    pub fn attach_availability(&self, live: Arc<LiveAvailability>) {
        *self.avail.write() = Some(live);
    }

    /// The currently attached availability map, if any.
    pub fn availability(&self) -> Option<Arc<LiveAvailability>> {
        self.avail.read().clone()
    }

    /// Current breaker state for a sensor (Closed if never probed).
    pub fn breaker_state(&self, id: SensorId) -> BreakerState {
        let table = self.breakers.lock();
        table
            .slots
            .get(id.index())
            .map(|b| b.state)
            .unwrap_or_default()
    }

    /// Number of breakers currently open.
    pub fn open_breakers(&self) -> usize {
        self.breakers.lock().open
    }

    /// Resets every breaker to closed (e.g. between experiment phases).
    pub fn reset_breakers(&self) {
        let mut table = self.breakers.lock();
        table.slots.clear();
        table.open = 0;
        telem::resilient().open_breakers.set(0);
    }

    fn run_batch(&self, ids: &[SensorId], now: Timestamp, retry_budget_ms: u64) -> ProbeReport
    where
        P: ProbeService,
    {
        let t = telem::resilient();
        let mut report = ProbeReport {
            outcomes: vec![None; ids.len()],
            ..ProbeReport::default()
        };
        if ids.is_empty() {
            return report;
        }
        let live = self.avail.read().clone();

        // Breaker admission: indexes into `ids` that reach the wire.
        let mut pending: Vec<usize> = Vec::with_capacity(ids.len());
        {
            let mut table = self.breakers.lock();
            for (i, &id) in ids.iter().enumerate() {
                let cooldown = self.config.breaker_cooldown;
                let b = table.slot(id);
                let admit = match b.state {
                    BreakerState::Closed | BreakerState::HalfOpen => true,
                    BreakerState::Open => {
                        if now >= b.opened_at + cooldown {
                            b.state = BreakerState::HalfOpen;
                            table.open -= 1;
                            t.breaker_half_open.inc();
                            true
                        } else {
                            false
                        }
                    }
                };
                if admit {
                    pending.push(i);
                } else {
                    report.breaker_skipped += 1;
                    // A skip is a known failure: keep teaching the
                    // estimator that the sensor is down.
                    if let Some(live) = &live {
                        live.record(id, false);
                    }
                }
            }
        }
        t.breaker_skipped.add(report.breaker_skipped);

        let mut wave = 0u32;
        while !pending.is_empty() {
            let batch: Vec<SensorId> = pending.iter().map(|&i| ids[i]).collect();
            let at = now + TimeDelta::from_millis(report.backoff_wait_ms);
            let outcomes = self.inner.probe_batch(&batch, at);
            debug_assert_eq!(outcomes.len(), batch.len(), "probe service size contract");

            let mut retryable: Vec<usize> = Vec::new();
            {
                let mut table = self.breakers.lock();
                for (&i, outcome) in pending.iter().zip(outcomes) {
                    let id = ids[i];
                    let ok = outcome.is_some();
                    if let Some(live) = &live {
                        live.record(id, ok);
                    }
                    let threshold = self.config.breaker_threshold;
                    let mut tripped = false;
                    let b = table.slot(id);
                    if ok {
                        if b.state != BreakerState::Closed {
                            t.breaker_closed.inc();
                        }
                        b.state = BreakerState::Closed;
                        b.consecutive_failures = 0;
                        report.outcomes[i] = outcome;
                    } else {
                        b.consecutive_failures = b.consecutive_failures.saturating_add(1);
                        let trip = match b.state {
                            // A half-open trial failure reopens immediately.
                            BreakerState::HalfOpen => true,
                            BreakerState::Closed => b.consecutive_failures >= threshold,
                            BreakerState::Open => false,
                        };
                        if trip {
                            b.state = BreakerState::Open;
                            b.opened_at = at;
                            tripped = true;
                            t.breaker_opened.inc();
                        }
                        // Only still-closed sensors are worth retrying.
                        if b.state == BreakerState::Closed {
                            retryable.push(i);
                        }
                    }
                    if tripped {
                        table.open += 1;
                    }
                }
                t.open_breakers.set(table.open as i64);
            }

            if retryable.is_empty() || wave >= self.config.max_retries {
                break;
            }
            let backoff = self
                .config
                .base_backoff
                .millis()
                .saturating_mul(1u64 << wave.min(16))
                .min(self.config.max_backoff.millis());
            if report.backoff_wait_ms.saturating_add(backoff) > retry_budget_ms {
                report.deadline_clipped += retryable.len() as u64;
                t.deadline_clipped.add(retryable.len() as u64);
                break;
            }
            report.backoff_wait_ms += backoff;
            report.retry_waves += 1;
            report.retries_issued += retryable.len() as u64;
            t.retries.add(retryable.len() as u64);
            t.retry_waves.inc();
            crate::flight::with(|f| {
                f.retry_round(u64::from(wave) + 1, retryable.len() as u64, backoff)
            });
            wave += 1;
            pending = retryable;
        }
        report
    }
}

impl<P: ProbeService> ProbeService for ResilientProber<P> {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        self.run_batch(ids, now, self.config.default_retry_budget.millis())
            .outcomes
    }

    fn probe_batch_report(
        &self,
        ids: &[SensorId],
        now: Timestamp,
        retry_budget_ms: u64,
    ) -> ProbeReport {
        self.run_batch(ids, now, retry_budget_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::AlwaysAvailable;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    const EXPIRY_MS: u64 = 60_000;

    /// A probe service whose health is a switch, counting wire probes.
    struct Switched {
        inner: AlwaysAvailable,
        up: AtomicBool,
        wire_probes: AtomicU64,
    }

    impl Switched {
        fn new(up: bool) -> Self {
            Switched {
                inner: AlwaysAvailable {
                    expiry_ms: EXPIRY_MS,
                },
                up: AtomicBool::new(up),
                wire_probes: AtomicU64::new(0),
            }
        }

        fn set_up(&self, up: bool) {
            self.up.store(up, Ordering::Relaxed);
        }

        fn wire_probes(&self) -> u64 {
            self.wire_probes.load(Ordering::Relaxed)
        }
    }

    impl ProbeService for Switched {
        fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
            self.wire_probes
                .fetch_add(ids.len() as u64, Ordering::Relaxed);
            if self.up.load(Ordering::Relaxed) {
                self.inner.probe_batch(ids, now)
            } else {
                vec![None; ids.len()]
            }
        }
    }

    fn one_shot_config() -> ResilientConfig {
        // max_retries = 0 isolates the breaker state machine: each
        // probe_batch call is exactly one attempt.
        ResilientConfig {
            max_retries: 0,
            breaker_threshold: 3,
            breaker_cooldown: TimeDelta::from_secs(60),
            ..ResilientConfig::default()
        }
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let svc = Switched::new(false);
        let prober = ResilientProber::new(svc, one_shot_config());
        let s = SensorId(7);
        let t0 = Timestamp(1_000);

        // Three consecutive failures: closed → open.
        for k in 0..3u64 {
            assert_eq!(prober.breaker_state(s), BreakerState::Closed);
            let out = prober.probe_batch(&[s], t0 + TimeDelta::from_millis(k));
            assert!(out[0].is_none());
        }
        assert_eq!(prober.breaker_state(s), BreakerState::Open);
        assert_eq!(prober.open_breakers(), 1);

        // Within the cooldown: skipped without touching the wire.
        let wire_before = prober.inner().wire_probes();
        let report = prober.probe_batch_report(&[s], t0 + TimeDelta::from_secs(1), 0);
        assert_eq!(report.breaker_skipped, 1);
        assert!(report.outcomes[0].is_none());
        assert_eq!(prober.inner().wire_probes(), wire_before);

        // Past the cooldown, still down: half-open trial fails → reopen.
        let t1 = t0 + TimeDelta::from_secs(120);
        let out = prober.probe_batch(&[s], t1);
        assert!(out[0].is_none());
        assert_eq!(prober.breaker_state(s), BreakerState::Open);
        assert_eq!(prober.inner().wire_probes(), wire_before + 1);

        // Recovery: next half-open trial succeeds → closed.
        prober.inner().set_up(true);
        let t2 = t1 + TimeDelta::from_secs(120);
        let out = prober.probe_batch(&[s], t2);
        assert!(out[0].is_some());
        assert_eq!(prober.breaker_state(s), BreakerState::Closed);
        assert_eq!(prober.open_breakers(), 0);
    }

    #[test]
    fn retries_recover_transient_failures_within_budget() {
        /// Fails each sensor's first `fail_first` probes, then succeeds.
        struct Flaky {
            inner: AlwaysAvailable,
            fail_first: u64,
            seen: Mutex<std::collections::HashMap<u32, u64>>,
        }
        impl ProbeService for Flaky {
            fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
                let ok = self.inner.probe_batch(ids, now);
                let mut seen = self.seen.lock();
                ids.iter()
                    .zip(ok)
                    .map(|(&id, r)| {
                        let n = seen.entry(id.0).or_insert(0);
                        *n += 1;
                        if *n <= self.fail_first {
                            None
                        } else {
                            r
                        }
                    })
                    .collect()
            }
        }
        let svc = Flaky {
            inner: AlwaysAvailable {
                expiry_ms: EXPIRY_MS,
            },
            fail_first: 2,
            seen: Mutex::new(Default::default()),
        };
        let prober = ResilientProber::new(svc, ResilientConfig::default());
        let ids = [SensorId(1), SensorId(2)];
        let report = prober.probe_batch_report(&ids, Timestamp(5_000), 2_000);
        assert!(report.outcomes.iter().all(|o| o.is_some()));
        assert_eq!(report.retry_waves, 2);
        assert_eq!(report.retries_issued, 4);
        // Backoff 50 then 100 ms, capped well under the budget.
        assert_eq!(report.backoff_wait_ms, 150);
        assert_eq!(report.deadline_clipped, 0);
    }

    #[test]
    fn deadline_budget_clips_retries() {
        let svc = Switched::new(false);
        let prober = ResilientProber::new(
            svc,
            ResilientConfig {
                breaker_threshold: 100,
                ..ResilientConfig::default()
            },
        );
        let ids = [SensorId(0), SensorId(1), SensorId(2)];
        // Budget admits the first retry wave (50 ms) but not the second
        // (another 100 ms).
        let report = prober.probe_batch_report(&ids, Timestamp(1_000), 60);
        assert_eq!(report.retry_waves, 1);
        assert_eq!(report.backoff_wait_ms, 50);
        assert_eq!(report.deadline_clipped, 3);
        // Zero budget: no retries at all.
        let report = prober.probe_batch_report(&ids, Timestamp(2_000), 0);
        assert_eq!(report.retry_waves, 0);
        assert_eq!(report.deadline_clipped, 3);
    }

    #[test]
    fn open_breaker_stops_wire_probes_and_feeds_estimator() {
        use crate::reading::SensorMeta;
        use crate::tree::{ColrConfig, ColrTree};
        use colr_geo::Point;

        let sensors: Vec<SensorMeta> = (0..4)
            .map(|i| SensorMeta::new(i, Point::new(i as f64, 0.0), TimeDelta::from_mins(5), 1.0))
            .collect();
        let tree = ColrTree::build(sensors, ColrConfig::default(), 3);
        let live = Arc::new(LiveAvailability::from_tree(&tree, 0.5));

        let svc = Switched::new(false);
        let prober = ResilientProber::new(svc, one_shot_config());
        prober.attach_availability(live.clone());

        let s = SensorId(2);
        for k in 0..10u64 {
            prober.probe_batch(&[s], Timestamp(1_000 + k));
        }
        // Threshold 3: the wire saw exactly 3 probes, the rest skipped.
        assert_eq!(prober.inner().wire_probes(), 3);
        // Skips keep training the EWMA toward zero.
        assert!(live.sensor(s) < 0.01, "est {}", live.sensor(s));
    }
}
