//! Model-based estimation over cached readings.
//!
//! The paper's related-work section notes that MauveDB-style model-based
//! views are orthogonal and that "COLR-Tree can maintain a model from its
//! cached data (e.g., ...)". This module provides that extension: an
//! inverse-distance-weighted (IDW) spatial interpolation model fitted on the
//! fly from the *fresh cached readings* in the tree. It can
//!
//! * estimate the value at an arbitrary location without probing any sensor
//!   ([`IdwModel::estimate_at`]), and
//! * approximate a region average on a grid of interpolation points
//!   ([`IdwModel::estimate_region_avg`]),
//!
//! trading accuracy for *zero* communication — a third point on the
//! cost/freshness spectrum next to cache hits and sampled probes. Estimates
//! use only readings satisfying the caller's freshness bound, so the model
//! never launders expired data.

use colr_geo::{Point, Rect, Region};

use crate::reading::Reading;
use crate::time::{TimeDelta, Timestamp};
use crate::tree::ColrTree;

/// Inverse-distance-weighted interpolation over cached readings.
///
/// ```
/// use colr_geo::Point;
/// use colr_tree::{ColrConfig, ColrTree, IdwModel, Reading, SensorId, SensorMeta,
///                 TimeDelta, Timestamp};
///
/// let sensors = vec![
///     SensorMeta::new(0, Point::new(0.0, 0.0), TimeDelta::from_mins(5), 1.0),
///     SensorMeta::new(1, Point::new(2.0, 0.0), TimeDelta::from_mins(5), 1.0),
/// ];
/// let mut tree = ColrTree::build(sensors, ColrConfig::default(), 1);
/// for (id, value) in [(0, 10.0), (1, 20.0)] {
///     tree.insert_reading(Reading {
///         sensor: SensorId(id),
///         value,
///         timestamp: Timestamp(1_000),
///         expires_at: Timestamp(301_000),
///     }, Timestamp(1_000));
/// }
/// // Midway between the two sensors the estimate is their average.
/// let est = IdwModel::default()
///     .estimate_at(&tree, Point::new(1.0, 0.0), Timestamp(2_000), TimeDelta::from_mins(5))
///     .unwrap();
/// assert!((est - 15.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IdwModel {
    /// Distance exponent (2.0 is the classic Shepard weight `1/d²`).
    pub power: f64,
    /// Number of nearest cached readings used per estimate.
    pub max_neighbors: usize,
    /// Search radius around the estimation point, in map units; readings
    /// further away are ignored even if fewer than `max_neighbors` are
    /// found.
    pub search_radius: f64,
}

impl Default for IdwModel {
    fn default() -> Self {
        IdwModel {
            power: 2.0,
            max_neighbors: 8,
            search_radius: f64::INFINITY,
        }
    }
}

impl IdwModel {
    /// Estimates the value at `p` from fresh cached readings; `None` when no
    /// usable reading is within the search radius.
    pub fn estimate_at(
        &self,
        tree: &ColrTree,
        p: Point,
        now: Timestamp,
        staleness: TimeDelta,
    ) -> Option<f64> {
        let candidates = self.neighbors(tree, p, now, staleness);
        if candidates.is_empty() {
            return None;
        }
        // A reading at (numerically) zero distance decides outright.
        let mut num = 0.0;
        let mut den = 0.0;
        for (dist, value) in candidates {
            if dist < 1e-12 {
                return Some(value);
            }
            let w = dist.powf(-self.power);
            num += w * value;
            den += w;
        }
        (den > 0.0).then(|| num / den)
    }

    /// Approximates the mean value over `region` by averaging IDW estimates
    /// on a `grid × grid` lattice of points inside the region. `None` when
    /// no lattice point has a usable estimate.
    pub fn estimate_region_avg(
        &self,
        tree: &ColrTree,
        region: &Region,
        now: Timestamp,
        staleness: TimeDelta,
        grid: usize,
    ) -> Option<f64> {
        assert!(grid > 0, "grid must be positive");
        let bbox = region.bounding_rect();
        let mut sum = 0.0;
        let mut n = 0usize;
        for gy in 0..grid {
            for gx in 0..grid {
                let p = Point::new(
                    bbox.min.x + bbox.width() * (gx as f64 + 0.5) / grid as f64,
                    bbox.min.y + bbox.height() * (gy as f64 + 0.5) / grid as f64,
                );
                if !region.contains_point(&p) {
                    continue;
                }
                if let Some(v) = self.estimate_at(tree, p, now, staleness) {
                    sum += v;
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// The `max_neighbors` nearest fresh cached readings within the search
    /// radius, as `(distance, value)` pairs.
    fn neighbors(
        &self,
        tree: &ColrTree,
        p: Point,
        now: Timestamp,
        staleness: TimeDelta,
    ) -> Vec<(f64, f64)> {
        // Gather fresh cached readings near p: restrict the walk to the
        // search disc when finite, else the whole tree.
        let search: Region = if self.search_radius.is_finite() {
            Region::Rect(Rect::centered(p, self.search_radius))
        } else {
            Region::Rect(tree.node(tree.root()).bbox)
        };
        let readings: Vec<Reading> =
            tree.fresh_cached_readings(tree.root(), &search, now, staleness);
        let mut with_dist: Vec<(f64, f64)> = readings
            .into_iter()
            .filter_map(|r| {
                let d = tree.sensor_location(r.sensor).distance(&p);
                (d <= self.search_radius).then_some((d, r.value))
            })
            .collect();
        with_dist.sort_by(|a, b| a.0.total_cmp(&b.0));
        with_dist.truncate(self.max_neighbors);
        with_dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::{SensorId, SensorMeta};
    use crate::tree::ColrConfig;

    const EXPIRY_MS: u64 = 300_000;

    /// A 8x8 grid tree with cached readings whose values equal `x + 10*y`
    /// (a linear field — IDW should interpolate it well between points).
    fn seeded_tree() -> ColrTree {
        let sensors: Vec<SensorMeta> = (0..64)
            .map(|i| {
                SensorMeta::new(
                    i as u32,
                    Point::new((i % 8) as f64, (i / 8) as f64),
                    TimeDelta::from_millis(EXPIRY_MS),
                    1.0,
                )
            })
            .collect();
        let tree = ColrTree::build(sensors, ColrConfig::default(), 7);
        for i in 0..64u32 {
            let loc = tree.sensor_location(SensorId(i));
            let reading = Reading {
                sensor: SensorId(i),
                value: loc.x + 10.0 * loc.y,
                timestamp: Timestamp(1_000),
                expires_at: Timestamp(1_000 + EXPIRY_MS),
            };
            tree.insert_reading(reading, Timestamp(1_000));
        }
        tree
    }

    #[test]
    fn exact_at_sensor_location() {
        let tree = seeded_tree();
        let m = IdwModel::default();
        let v = m
            .estimate_at(
                &tree,
                Point::new(3.0, 2.0),
                Timestamp(2_000),
                TimeDelta::from_mins(5),
            )
            .unwrap();
        assert!((v - 23.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn interpolates_between_sensors() {
        let tree = seeded_tree();
        let m = IdwModel::default();
        // Between (3,2)=23 and (4,2)=24: symmetric neighbours → ≈23.5.
        let v = m
            .estimate_at(
                &tree,
                Point::new(3.5, 2.0),
                Timestamp(2_000),
                TimeDelta::from_mins(5),
            )
            .unwrap();
        assert!((v - 23.5).abs() < 0.5, "got {v}");
    }

    #[test]
    fn no_estimate_from_empty_cache() {
        let sensors: Vec<SensorMeta> = (0..16)
            .map(|i| {
                SensorMeta::new(
                    i as u32,
                    Point::new(i as f64, 0.0),
                    TimeDelta::from_millis(EXPIRY_MS),
                    1.0,
                )
            })
            .collect();
        let tree = ColrTree::build(sensors, ColrConfig::default(), 7);
        let m = IdwModel::default();
        assert!(m
            .estimate_at(
                &tree,
                Point::new(1.0, 0.0),
                Timestamp(1_000),
                TimeDelta::from_mins(5)
            )
            .is_none());
    }

    #[test]
    fn stale_readings_are_excluded() {
        let tree = seeded_tree();
        let m = IdwModel::default();
        // 2 minutes later with a 30s freshness bound: nothing usable.
        assert!(m
            .estimate_at(
                &tree,
                Point::new(3.0, 2.0),
                Timestamp(121_000),
                TimeDelta::from_secs(30)
            )
            .is_none());
    }

    #[test]
    fn expired_readings_are_excluded() {
        let tree = seeded_tree();
        // Past every expiry: cache rolls empty → no estimate.
        tree.advance(Timestamp(1_000 + EXPIRY_MS * 2));
        let m = IdwModel::default();
        assert!(m
            .estimate_at(
                &tree,
                Point::new(3.0, 2.0),
                Timestamp(1_000 + EXPIRY_MS * 2),
                TimeDelta::from_mins(10)
            )
            .is_none());
    }

    #[test]
    fn search_radius_limits_neighbors() {
        let tree = seeded_tree();
        let m = IdwModel {
            search_radius: 0.4, // no sensor within 0.4 of a cell centre offset
            ..Default::default()
        };
        assert!(m
            .estimate_at(
                &tree,
                Point::new(3.5, 2.5),
                Timestamp(2_000),
                TimeDelta::from_mins(5)
            )
            .is_none());
    }

    #[test]
    fn region_avg_tracks_linear_field() {
        let tree = seeded_tree();
        let m = IdwModel::default();
        // Over the whole grid the linear field's true mean is 3.5 + 10·3.5.
        let region = Region::Rect(Rect::from_coords(-0.5, -0.5, 7.5, 7.5));
        let est = m
            .estimate_region_avg(&tree, &region, Timestamp(2_000), TimeDelta::from_mins(5), 8)
            .unwrap();
        assert!((est - 38.5).abs() < 2.0, "got {est}");
    }

    #[test]
    fn region_avg_respects_region_shape() {
        let tree = seeded_tree();
        let m = IdwModel::default();
        // Bottom row only (y≈0): mean ≈ 3.5.
        let region = Region::Rect(Rect::from_coords(-0.5, -0.4, 7.5, 0.4));
        let est = m
            .estimate_region_avg(&tree, &region, Timestamp(2_000), TimeDelta::from_mins(5), 8)
            .unwrap();
        assert!((est - 3.5).abs() < 2.0, "got {est}");
    }

    #[test]
    #[should_panic(expected = "grid must be positive")]
    fn zero_grid_rejected() {
        let tree = seeded_tree();
        IdwModel::default().estimate_region_avg(
            &tree,
            &Region::Rect(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
            Timestamp(2_000),
            TimeDelta::from_mins(5),
            0,
        );
    }
}
