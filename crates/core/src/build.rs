//! Bulk construction (Section III-C).
//!
//! COLR-Tree assumes sensor locations change rarely, so the tree is built
//! bottom-up in batch mode "by iteratively computing sensor clusters with a
//! k-means algorithm": sensors are clustered into `⌈n/B⌉` leaves, leaf
//! centroids into the level above, and so on until at most `B` nodes remain
//! under the root. An STR (sort-tile-recursive) packing strategy — in the
//! spirit of the Kamel–Faloutsos bulk loading the paper cites — is provided
//! as an alternative for ablation.
//!
//! Large inputs are clustered with *grid-partitioned* k-means: the plane is
//! divided into cells of a few thousand points and Lloyd's algorithm runs
//! within each cell with a proportional share of `k`. This keeps construction
//! near-linear while preserving the spatial-compactness property the paper
//! relies on (near-uniform node weights per level, Section VII-B).
//!
//! ## Parallel construction
//!
//! Grid cells are independent, so each clustering level fans its cells out
//! over a scoped thread pool ([`ColrTree::build_with_threads`]). Every cell
//! draws its k-means seed from the build RNG *in cell order before* any
//! thread starts, and results are merged back in the same order — the built
//! tree is bit-identical for a fixed `(sensors, config, seed)` regardless of
//! the thread count. Levels themselves run sequentially (level `l` clusters
//! the centroids produced by level `l+1`).

use colr_geo::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::reading::{SensorId, SensorMeta};
use crate::slot_cache::SlotConfig;
use crate::time::TimeDelta;
use crate::tree::{BuildStrategy, Children, ColrConfig, ColrTree, Node, NodeId};

/// Points above this count are clustered per grid cell.
const DIRECT_KMEANS_MAX: usize = 4096;
/// Target points per grid cell for partitioned k-means.
const TARGET_CELL: usize = 1024;

impl ColrTree {
    /// Bulk-builds a COLR-Tree over `sensors`, clustering grid cells on all
    /// available cores.
    ///
    /// Construction is deterministic for a given `(sensors, config, seed)`
    /// — independent of the machine's core count; the seed feeds the k-means
    /// initialisation.
    pub fn build(sensors: Vec<SensorMeta>, config: ColrConfig, seed: u64) -> ColrTree {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_with_threads(sensors, config, seed, threads)
    }

    /// [`ColrTree::build`] with an explicit worker-thread count (`1` =
    /// fully sequential). The output is bit-identical across thread counts.
    pub fn build_with_threads(
        sensors: Vec<SensorMeta>,
        config: ColrConfig,
        seed: u64,
        threads: usize,
    ) -> ColrTree {
        assert!(config.branching >= 2, "branching factor must be >= 2");
        for (i, s) in sensors.iter().enumerate() {
            assert_eq!(
                s.id.index(),
                i,
                "sensor ids must be dense and in order (SensorId(i) at index i)"
            );
        }
        let t_max = sensors
            .iter()
            .map(|s| s.expiry)
            .max()
            .unwrap_or(TimeDelta::from_mins(10));
        let mut slot_config = SlotConfig::for_window(t_max, config.num_slots);
        if let Some(spec) = config.slot_histograms {
            slot_config = slot_config.with_histogram(spec);
        }
        let mut builder = Builder {
            nodes: Vec::new(),
            sensor_leaf: vec![NodeId(0); sensors.len()],
            rng: StdRng::seed_from_u64(seed),
            threads: threads.max(1),
        };

        let root = if sensors.is_empty() {
            builder.push_leaf(&sensors, Vec::new())
        } else {
            builder.build_levels(&sensors, &config)
        };

        let telem = crate::telem::build();
        let assemble_start = std::time::Instant::now();
        let mut tree = ColrTree::assemble(
            config,
            slot_config,
            t_max,
            sensors,
            builder.nodes,
            root,
            builder.sensor_leaf,
        );
        tree.assign_levels();
        // Flatten the finished generation into the query-time arena: BFS
        // numbering (children contiguous), SoA bounding boxes, per-node
        // alias tables over child weights.
        tree.arena = Some(std::sync::Arc::new(crate::arena::SamplingArena::from_tree(
            &tree,
        )));
        telem
            .assemble_phase_us
            .observe(assemble_start.elapsed().as_micros() as u64);
        telem.trees.inc();
        tree
    }

    /// Rebuilds the index over a (possibly updated) sensor set, discarding
    /// all cached data — the paper's periodic reconstruction to reflect
    /// sensor relocation.
    pub fn rebuild(&mut self, sensors: Vec<SensorMeta>, seed: u64) {
        *self = ColrTree::build(sensors, self.config.clone(), seed);
    }

    fn assign_levels(&mut self) {
        // BFS from the root; also records the leaf level (uniform by
        // construction).
        let mut max_level = 0;
        let mut queue = std::collections::VecDeque::from([(self.root, 0u16)]);
        while let Some((id, level)) = queue.pop_front() {
            self.nodes[id.index()].level = level;
            max_level = max_level.max(level);
            if let Children::Internal(children) = &self.nodes[id.index()].children {
                for &c in children {
                    queue.push_back((c, level + 1));
                }
            }
        }
        self.leaf_level = max_level;
    }
}

struct Builder {
    nodes: Vec<Node>,
    sensor_leaf: Vec<NodeId>,
    rng: StdRng,
    threads: usize,
}

impl Builder {
    fn merge_kind_weight(kw: &mut Vec<(u16, u64)>, kind: u16, add: u64) {
        match kw.binary_search_by_key(&kind, |(k, _)| *k) {
            Ok(i) => kw[i].1 += add,
            Err(i) => kw.insert(i, (kind, add)),
        }
    }

    fn push_leaf(&mut self, sensors: &[SensorMeta], members: Vec<SensorId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let points: Vec<Point> = members
            .iter()
            .map(|s| sensors[s.index()].location)
            .collect();
        let bbox = Rect::bounding(&points).unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 0.0, 0.0));
        let weight = members.len() as u64;
        let avail_mean = if members.is_empty() {
            1.0
        } else {
            members
                .iter()
                .map(|s| sensors[s.index()].availability)
                .sum::<f64>()
                / members.len() as f64
        };
        let mut kind_weights: Vec<(u16, u64)> = Vec::new();
        for &s in &members {
            self.sensor_leaf[s.index()] = id;
            Self::merge_kind_weight(&mut kind_weights, sensors[s.index()].kind, 1);
        }
        self.nodes.push(Node {
            level: 0,
            bbox,
            parent: None,
            children: Children::Leaf(members),
            weight,
            kind_weights,
            avail_mean,
        });
        id
    }

    fn push_internal(&mut self, members: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let bbox = Rect::bounding_rects(members.iter().map(|&m| &self.nodes[m.index()].bbox))
            .expect("internal node has children");
        let weight: u64 = members.iter().map(|&m| self.nodes[m.index()].weight).sum();
        let avail_mean = if weight == 0 {
            1.0
        } else {
            members
                .iter()
                .map(|&m| {
                    let n = &self.nodes[m.index()];
                    n.avail_mean * n.weight as f64
                })
                .sum::<f64>()
                / weight as f64
        };
        let mut kind_weights: Vec<(u16, u64)> = Vec::new();
        for &m in &members {
            self.nodes[m.index()].parent = Some(id);
            for (k, w) in self.nodes[m.index()].kind_weights.clone() {
                Self::merge_kind_weight(&mut kind_weights, k, w);
            }
        }
        self.nodes.push(Node {
            level: 0,
            bbox,
            parent: None,
            children: Children::Internal(members),
            weight,
            kind_weights,
            avail_mean,
        });
        id
    }

    fn build_levels(&mut self, sensors: &[SensorMeta], config: &ColrConfig) -> NodeId {
        let telem = crate::telem::build();
        let b = config.branching;
        // --- Leaf level ---
        let leaf_start = std::time::Instant::now();
        let points: Vec<Point> = sensors.iter().map(|s| s.location).collect();
        let ids: Vec<usize> = (0..sensors.len()).collect();
        let k = sensors.len().div_ceil(b).max(1);
        let groups = self.group(&points, &ids, k, config.build);
        let mut current: Vec<NodeId> = groups
            .into_iter()
            .map(|members| {
                let members = members.into_iter().map(|i| SensorId(i as u32)).collect();
                self.push_leaf(sensors, members)
            })
            .collect();
        telem
            .leaf_phase_us
            .observe(leaf_start.elapsed().as_micros() as u64);

        // --- Internal levels ---
        let internal_start = std::time::Instant::now();
        while current.len() > b {
            let centroids: Vec<Point> = current
                .iter()
                .map(|&id| self.nodes[id.index()].bbox.center())
                .collect();
            let idxs: Vec<usize> = (0..current.len()).collect();
            let k = current.len().div_ceil(b).max(1);
            let groups = self.group(&centroids, &idxs, k, config.build);
            current = groups
                .into_iter()
                .map(|members| {
                    let members = members.into_iter().map(|i| current[i]).collect();
                    self.push_internal(members)
                })
                .collect();
        }
        let root = if current.len() == 1 {
            current[0]
        } else {
            self.push_internal(current)
        };
        telem
            .internal_phase_us
            .observe(internal_start.elapsed().as_micros() as u64);
        root
    }

    /// Clusters `items` (parallel to `points`) into at most `k` non-empty
    /// groups.
    fn group(
        &mut self,
        points: &[Point],
        items: &[usize],
        k: usize,
        strategy: BuildStrategy,
    ) -> Vec<Vec<usize>> {
        debug_assert_eq!(points.len(), items.len());
        if k <= 1 || points.len() <= 1 {
            return vec![items.to_vec()];
        }
        match strategy {
            BuildStrategy::KMeans { iterations } => {
                if points.len() > DIRECT_KMEANS_MAX {
                    self.grid_kmeans(points, items, k, iterations)
                } else {
                    lloyd(points, items, k, iterations, &mut self.rng)
                }
            }
            BuildStrategy::Str => str_pack(points, items, k),
            BuildStrategy::Morton => {
                crate::morton::morton_pack(points, items, points.len().div_ceil(k).max(1))
            }
        }
    }

    /// Grid-partitioned k-means for large inputs: cluster each spatial cell
    /// independently with a proportional share of `k`, fanning the cells out
    /// over `self.threads` scoped workers.
    ///
    /// Determinism: every cell's RNG seed is drawn from the build RNG in cell
    /// order before any worker starts, and cell results are concatenated in
    /// that same order, so the grouping does not depend on the thread count
    /// or scheduling.
    fn grid_kmeans(
        &mut self,
        points: &[Point],
        items: &[usize],
        k: usize,
        iterations: usize,
    ) -> Vec<Vec<usize>> {
        let n = points.len();
        let bbox = Rect::bounding(points).expect("non-empty");
        let g = ((n as f64 / TARGET_CELL as f64).sqrt().ceil() as usize).max(1);
        let w = bbox.width().max(f64::MIN_POSITIVE);
        let h = bbox.height().max(f64::MIN_POSITIVE);
        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); g * g]; // indices into points
        for (i, p) in points.iter().enumerate() {
            let cx = (((p.x - bbox.min.x) / w * g as f64) as usize).min(g - 1);
            let cy = (((p.y - bbox.min.y) / h * g as f64) as usize).min(g - 1);
            cells[cy * g + cx].push(i);
        }
        struct Job {
            points: Vec<Point>,
            items: Vec<usize>,
            share: usize,
            seed: u64,
        }
        let jobs: Vec<Job> = cells
            .into_iter()
            .filter(|c| !c.is_empty())
            .map(|cell| Job {
                points: cell.iter().map(|&i| points[i]).collect(),
                items: cell.iter().map(|&i| items[i]).collect(),
                share: ((k as f64 * cell.len() as f64 / n as f64).round() as usize)
                    .clamp(1, cell.len()),
                seed: self.rng.next_u64(),
            })
            .collect();

        let run = |job: &Job| {
            let mut rng = StdRng::seed_from_u64(job.seed);
            lloyd(&job.points, &job.items, job.share, iterations, &mut rng)
        };
        let per_cell: Vec<Vec<Vec<usize>>> = if self.threads <= 1 || jobs.len() <= 1 {
            jobs.iter().map(run).collect()
        } else {
            let chunk = jobs.len().div_ceil(self.threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks(chunk)
                    .map(|batch| scope.spawn(move || batch.iter().map(run).collect::<Vec<_>>()))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("k-means worker panicked"))
                    .collect()
            })
        };
        per_cell.into_iter().flatten().collect()
    }
}

/// Clusters `points` into at most `k` non-empty spatial groups using the
/// same Lloyd's k-means the bulk build runs per level, returning the point
/// indices of each group (indices ascending within a group, groups ordered
/// by their smallest member).
///
/// This is the shard-map primitive: a sharded portal partitions its sensor
/// population with exactly the clustering the tree itself is built from, so
/// shard extents line up with the index's own notion of spatial locality.
/// Deterministic for a given `(points, k, iterations, seed)`.
pub fn kmeans_partition(
    points: &[Point],
    k: usize,
    iterations: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let items: Vec<usize> = (0..n).collect();
    if k <= 1 || n <= 1 {
        return vec![items];
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut groups = lloyd(points, &items, k, iterations.max(1), &mut rng);
    // `lloyd` pushes members in input order (ascending); order the groups
    // themselves by first member so shard numbering is stable to read.
    groups.sort_by_key(|g| g[0]);
    groups
}

/// Plain Lloyd's k-means with random distinct seeding.
fn lloyd(
    points: &[Point],
    items: &[usize],
    k: usize,
    iterations: usize,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    let n = points.len();
    let k = k.min(n);
    crate::telem::build()
        .kmeans_iterations
        .add(iterations.max(1) as u64);
    // Seed with k distinct random points (partial Fisher–Yates).
    let mut order: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        order.swap(i, j);
    }
    let mut centers: Vec<Point> = order[..k].iter().map(|&i| points[i]).collect();
    let mut assign = vec![0usize; n];
    for _ in 0..iterations.max(1) {
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = p.distance_sq(center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
        // Update step.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for (i, p) in points.iter().enumerate() {
            let s = &mut sums[assign[i]];
            s.0 += p.x;
            s.1 += p.y;
            s.2 += 1;
        }
        for (c, center) in centers.iter_mut().enumerate() {
            let (sx, sy, cnt) = sums[c];
            if cnt > 0 {
                *center = Point::new(sx / cnt as f64, sy / cnt as f64);
            } else {
                // Re-seed empty cluster at a random point.
                *center = points[rng.random_range(0..n)];
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &a) in assign.iter().enumerate() {
        groups[a].push(items[i]);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Sort-tile-recursive packing into `k` groups.
fn str_pack(points: &[Point], items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let n = points.len();
    let k = k.min(n).max(1);
    let group_size = n.div_ceil(k);
    let slabs = (k as f64).sqrt().ceil() as usize;
    let slab_size = n.div_ceil(slabs);

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .x
            .partial_cmp(&points[b].x)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut groups = Vec::with_capacity(k);
    for slab in order.chunks(slab_size.max(1)) {
        let mut slab: Vec<usize> = slab.to_vec();
        slab.sort_by(|&a, &b| {
            points[a]
                .y
                .partial_cmp(&points[b].y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for chunk in slab.chunks(group_size.max(1)) {
            groups.push(chunk.iter().map(|&i| items[i]).collect());
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BuildStrategy;

    fn grid_sensors(side: usize) -> Vec<SensorMeta> {
        let mut out = Vec::new();
        for y in 0..side {
            for x in 0..side {
                out.push(SensorMeta::new(
                    (y * side + x) as u32,
                    Point::new(x as f64, y as f64),
                    TimeDelta::from_mins(5),
                    0.9,
                ));
            }
        }
        out
    }

    #[test]
    fn builds_valid_tree_kmeans() {
        let tree = ColrTree::build(grid_sensors(20), ColrConfig::default(), 42);
        tree.validate().expect("valid tree");
        assert_eq!(tree.sensors().len(), 400);
        assert_eq!(tree.node(tree.root()).weight, 400);
        assert!(tree.leaf_level() >= 1);
    }

    #[test]
    fn builds_valid_tree_str() {
        let config = ColrConfig {
            build: BuildStrategy::Str,
            ..Default::default()
        };
        let tree = ColrTree::build(grid_sensors(20), config, 42);
        tree.validate().expect("valid tree");
        assert_eq!(tree.node(tree.root()).weight, 400);
    }

    #[test]
    fn builds_valid_tree_morton() {
        let config = ColrConfig {
            build: BuildStrategy::Morton,
            ..Default::default()
        };
        let tree = ColrTree::build(grid_sensors(20), config, 42);
        tree.validate().expect("valid tree");
        assert_eq!(tree.node(tree.root()).weight, 400);
        assert!(tree.leaf_level() >= 1);
        // Morton construction is RNG-free, hence trivially deterministic.
        let again = ColrTree::build(
            grid_sensors(20),
            ColrConfig {
                build: BuildStrategy::Morton,
                ..Default::default()
            },
            7,
        );
        assert_eq!(tree.node_count(), again.node_count());
        for id in tree.node_ids() {
            assert_eq!(tree.node(id).bbox, again.node(id).bbox);
        }
    }

    #[test]
    fn empty_tree_is_valid() {
        let tree = ColrTree::build(Vec::new(), ColrConfig::default(), 1);
        tree.validate().expect("valid empty tree");
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.node(tree.root()).weight, 0);
    }

    #[test]
    fn single_sensor_tree() {
        let sensors = vec![SensorMeta::new(
            0,
            Point::new(1.0, 2.0),
            TimeDelta::from_mins(5),
            1.0,
        )];
        let tree = ColrTree::build(sensors, ColrConfig::default(), 1);
        tree.validate().expect("valid");
        assert_eq!(tree.node(tree.root()).weight, 1);
        assert_eq!(tree.leaf_level(), 0);
        assert!(tree.node(tree.root()).is_leaf());
    }

    #[test]
    #[should_panic(expected = "dense and in order")]
    fn rejects_sparse_sensor_ids() {
        let sensors = vec![SensorMeta::new(
            5,
            Point::new(0.0, 0.0),
            TimeDelta::from_mins(5),
            1.0,
        )];
        ColrTree::build(sensors, ColrConfig::default(), 1);
    }

    #[test]
    fn t_max_is_max_sensor_expiry() {
        let mut sensors = grid_sensors(3);
        sensors[4].expiry = TimeDelta::from_mins(42);
        let tree = ColrTree::build(sensors, ColrConfig::default(), 1);
        assert_eq!(tree.t_max(), TimeDelta::from_mins(42));
    }

    #[test]
    fn leaf_fanout_is_near_branching_factor() {
        let tree = ColrTree::build(grid_sensors(30), ColrConfig::default(), 7);
        let leaves: Vec<_> = tree
            .node_ids()
            .filter(|&id| tree.node(id).is_leaf())
            .collect();
        let avg = 900.0 / leaves.len() as f64;
        assert!(
            (4.0..=20.0).contains(&avg),
            "average leaf fanout {avg} too far from branching 10"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = ColrTree::build(grid_sensors(10), ColrConfig::default(), 9);
        let b = ColrTree::build(grid_sensors(10), ColrConfig::default(), 9);
        assert_eq!(a.node_count(), b.node_count());
        for id in a.node_ids() {
            assert_eq!(a.node(id).bbox, b.node(id).bbox);
            assert_eq!(a.node(id).weight, b.node(id).weight);
        }
    }

    #[test]
    fn grid_kmeans_handles_large_inputs() {
        // Above DIRECT_KMEANS_MAX to exercise the partitioned path.
        let tree = ColrTree::build(grid_sensors(72), ColrConfig::default(), 3); // 5184 sensors
        tree.validate().expect("valid large tree");
        assert_eq!(tree.node(tree.root()).weight, 5184);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        // Large enough to exercise the partitioned (parallel) path.
        let sensors = grid_sensors(72); // 5184 sensors
        let seq = ColrTree::build_with_threads(sensors.clone(), ColrConfig::default(), 11, 1);
        for threads in [2, 4, 7] {
            let par =
                ColrTree::build_with_threads(sensors.clone(), ColrConfig::default(), 11, threads);
            assert_eq!(seq.node_count(), par.node_count(), "{threads} threads");
            for id in seq.node_ids() {
                assert_eq!(
                    format!("{:?}", seq.node(id)),
                    format!("{:?}", par.node(id)),
                    "node {id:?} differs at {threads} threads"
                );
            }
            for s in 0..sensors.len() {
                assert_eq!(
                    seq.home_leaf(SensorId(s as u32)),
                    par.home_leaf(SensorId(s as u32)),
                    "sensor {s} homed differently at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn str_pack_groups_cover_all_items() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let items: Vec<usize> = (0..100).collect();
        let groups = str_pack(&pts, &items, 10);
        let mut all: Vec<usize> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn availability_is_weighted_mean() {
        let mut sensors = grid_sensors(4); // 16 sensors, avail 0.9
        for s in sensors.iter_mut().take(8) {
            s.availability = 0.5;
        }
        let tree = ColrTree::build(sensors, ColrConfig::default(), 1);
        let root_avail = tree.node(tree.root()).avail_mean;
        assert!((root_avail - 0.7).abs() < 1e-9, "got {root_avail}");
    }
}
