//! Per-query instrumentation and the modelled cost of query processing.
//!
//! The paper's evaluation reports *internal data-structure statistics*
//! (Fig 3), *sensor probe counts*, and *processing latency* (Fig 4–5).
//! [`QueryStats`] collects the structural counters during a lookup, and
//! [`CostModel`] converts them into a deterministic simulated latency so the
//! latency figures are reproducible on any machine. Defaults are calibrated
//! against the relative costs the paper reports (probing live sensors is
//! orders of magnitude more expensive than touching an index node; COLR-Tree
//! lands around ~40 ms per query at the default workload scale).

/// Structural counters accumulated while processing one query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Index nodes visited during traversal (internal + leaf).
    pub nodes_traversed: u64,
    /// Nodes whose slot cache satisfied (part of) the query — the nested plot
    /// of Fig 3.
    pub cache_nodes_used: u64,
    /// Slot-cache slots combined to produce answers.
    pub slots_combined: u64,
    /// Raw cached readings that contributed to the answer.
    pub readings_from_cache: u64,
    /// Sensors probed (requests issued, including failed ones).
    pub sensors_probed: u64,
    /// Probe waves issued (primary waves of `probe_parallelism` sensors plus
    /// retry waves). Lets cold-run reports attribute latency to round-trips.
    pub probe_waves: u64,
    /// Probes that returned no data (sensor unavailable).
    pub probes_failed: u64,
    /// Cache entries scanned (flat-cache baseline work).
    pub entries_scanned: u64,
    /// Readings inserted into the cache as a result of this query's probes.
    pub cache_inserts: u64,
    /// Individual probes re-issued by a resilient retry layer.
    pub probes_retried: u64,
    /// Retry waves issued after primary waves; each costs one RTT.
    pub retry_waves: u64,
    /// Simulated time spent waiting in retry backoff, ms.
    pub retry_backoff_ms: u64,
    /// Probes skipped because the sensor's circuit breaker was open
    /// (counted within `sensors_probed` and `probes_failed`).
    pub breaker_skipped: u64,
    /// Failed probes whose retries were abandoned on the deadline budget.
    pub deadline_clipped: u64,
}

impl QueryStats {
    /// Probes that successfully returned data. A failure count can only
    /// exceed the probe count through a merge of inconsistent records, so
    /// this saturates rather than panicking in release builds.
    pub fn probes_succeeded(&self) -> u64 {
        self.sensors_probed.saturating_sub(self.probes_failed)
    }

    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        debug_assert!(
            other.probes_failed <= other.sensors_probed,
            "merging inconsistent stats: {} failures > {} probes",
            other.probes_failed,
            other.sensors_probed
        );
        self.nodes_traversed += other.nodes_traversed;
        self.cache_nodes_used += other.cache_nodes_used;
        self.slots_combined += other.slots_combined;
        self.readings_from_cache += other.readings_from_cache;
        self.sensors_probed += other.sensors_probed;
        self.probe_waves += other.probe_waves;
        self.probes_failed += other.probes_failed;
        self.entries_scanned += other.entries_scanned;
        self.cache_inserts += other.cache_inserts;
        self.probes_retried += other.probes_retried;
        self.retry_waves += other.retry_waves;
        self.retry_backoff_ms += other.retry_backoff_ms;
        self.breaker_skipped += other.breaker_skipped;
        self.deadline_clipped += other.deadline_clipped;
    }
}

/// Deterministic latency model for one query.
///
/// `latency = nodes·node_visit + slots·slot_combine + entries·entry_scan
///           + ceil(probes / parallelism)·probe_rtt + probes·probe_overhead`
///
/// Probes within a query are issued in parallel waves of `probe_parallelism`
/// (SENSORMAP probes sensors concurrently, Section V); each wave costs one
/// round-trip plus a small per-probe marshalling overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of visiting one index node, in ms.
    pub node_visit_ms: f64,
    /// Cost of combining one cached slot, in ms.
    pub slot_combine_ms: f64,
    /// Cost of scanning one flat-cache entry, in ms.
    pub entry_scan_ms: f64,
    /// Round-trip time of one parallel probe wave, in ms.
    pub probe_rtt_ms: f64,
    /// Number of concurrent probes per wave.
    pub probe_parallelism: u64,
    /// Marshalling/processing overhead per probe, in ms.
    pub probe_overhead_ms: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            node_visit_ms: 0.05,
            slot_combine_ms: 0.02,
            entry_scan_ms: 0.001,
            probe_rtt_ms: 25.0,
            probe_parallelism: 128,
            probe_overhead_ms: 0.05,
        }
    }
}

impl CostModel {
    /// Simulated end-to-end processing latency for `stats`, in milliseconds.
    pub fn latency_ms(&self, stats: &QueryStats) -> f64 {
        let waves = if self.probe_parallelism == 0 {
            stats.sensors_probed
        } else {
            stats.sensors_probed.div_ceil(self.probe_parallelism)
        };
        stats.nodes_traversed as f64 * self.node_visit_ms
            + stats.slots_combined as f64 * self.slot_combine_ms
            + stats.entries_scanned as f64 * self.entry_scan_ms
            + waves as f64 * self.probe_rtt_ms
            + stats.sensors_probed as f64 * self.probe_overhead_ms
            // Fault-tolerance surcharge: each retry wave is one more RTT,
            // each re-issued probe pays marshalling overhead again, and
            // backoff waits elapse on the simulated clock verbatim.
            + stats.retry_waves as f64 * self.probe_rtt_ms
            + stats.probes_retried as f64 * self.probe_overhead_ms
            + stats.retry_backoff_ms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_counter() {
        let a = QueryStats {
            nodes_traversed: 1,
            cache_nodes_used: 2,
            slots_combined: 3,
            readings_from_cache: 4,
            sensors_probed: 5,
            probe_waves: 3,
            probes_failed: 1,
            entries_scanned: 6,
            cache_inserts: 7,
            probes_retried: 8,
            retry_waves: 9,
            retry_backoff_ms: 10,
            breaker_skipped: 1,
            deadline_clipped: 2,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.nodes_traversed, 2);
        assert_eq!(b.cache_nodes_used, 4);
        assert_eq!(b.slots_combined, 6);
        assert_eq!(b.readings_from_cache, 8);
        assert_eq!(b.sensors_probed, 10);
        assert_eq!(b.probe_waves, 6);
        assert_eq!(b.probes_failed, 2);
        assert_eq!(b.entries_scanned, 12);
        assert_eq!(b.cache_inserts, 14);
        assert_eq!(b.probes_retried, 16);
        assert_eq!(b.retry_waves, 18);
        assert_eq!(b.retry_backoff_ms, 20);
        assert_eq!(b.breaker_skipped, 2);
        assert_eq!(b.deadline_clipped, 4);
        assert_eq!(b.probes_succeeded(), 8);
    }

    #[test]
    fn retries_charge_rtt_overhead_and_backoff() {
        let m = CostModel {
            node_visit_ms: 0.0,
            slot_combine_ms: 0.0,
            entry_scan_ms: 0.0,
            probe_rtt_ms: 10.0,
            probe_parallelism: 128,
            probe_overhead_ms: 0.5,
        };
        let s = QueryStats {
            sensors_probed: 4,
            probes_retried: 3,
            retry_waves: 2,
            retry_backoff_ms: 150,
            ..Default::default()
        };
        // 1 primary wave + 2 retry waves at 10 ms, 7 marshalled probes at
        // 0.5 ms, plus 150 ms of simulated backoff.
        assert_eq!(m.latency_ms(&s), 30.0 + 3.5 + 150.0);
    }

    #[test]
    fn latency_zero_for_empty_stats() {
        let m = CostModel::default();
        assert_eq!(m.latency_ms(&QueryStats::default()), 0.0);
    }

    #[test]
    fn probe_waves_are_ceiled() {
        let m = CostModel {
            node_visit_ms: 0.0,
            slot_combine_ms: 0.0,
            entry_scan_ms: 0.0,
            probe_rtt_ms: 10.0,
            probe_parallelism: 4,
            probe_overhead_ms: 0.0,
        };
        let mk = |p: u64| QueryStats {
            sensors_probed: p,
            ..Default::default()
        };
        assert_eq!(m.latency_ms(&mk(1)), 10.0);
        assert_eq!(m.latency_ms(&mk(4)), 10.0);
        assert_eq!(m.latency_ms(&mk(5)), 20.0);
        assert_eq!(m.latency_ms(&mk(0)), 0.0);
    }

    #[test]
    fn probing_dominates_traversal_by_default() {
        // The cost model must encode the paper's premise: collecting from
        // sensors is far more expensive than touching index nodes.
        let m = CostModel::default();
        let probe_one = QueryStats {
            sensors_probed: 1,
            ..Default::default()
        };
        let visit_hundred = QueryStats {
            nodes_traversed: 100,
            ..Default::default()
        };
        assert!(m.latency_ms(&probe_one) > m.latency_ms(&visit_hundred));
    }

    #[test]
    fn zero_parallelism_serialises_probes() {
        let m = CostModel {
            probe_parallelism: 0,
            probe_rtt_ms: 5.0,
            probe_overhead_ms: 0.0,
            node_visit_ms: 0.0,
            slot_combine_ms: 0.0,
            entry_scan_ms: 0.0,
        };
        let s = QueryStats {
            sensors_probed: 3,
            ..Default::default()
        };
        assert_eq!(m.latency_ms(&s), 15.0);
    }
}
