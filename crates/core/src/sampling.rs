//! Layered sampling (Section V, Algorithms 1 and 2).
//!
//! COLR-Tree bounds per-query collection cost by probing only a target
//! number `R` of sensors, chosen uniformly at random among the sensors in
//! the query region, in a **single pass** interleaved with the range lookup:
//!
//! * **Weighted partitioning** — a node splits its target among children in
//!   proportion to `w_i · Overlap(BB(i), A)` (weight × query-overlap
//!   fraction), so each subtree contributes in proportion to its expected
//!   population inside the region (Theorem 2's uniformity).
//! * **Oversampling** — exactly once per root→probe path the target is
//!   scaled by `1/a_i` (inverse mean availability) so that the *expected*
//!   number of successful probes matches the target (Theorem 1): at the
//!   first fully contained node below the terminal level, or at level `O`
//!   when containment happens deeper.
//! * **Cache exploitation** — fresh cached readings count against the target
//!   before any probe is issued, and a terminal whose slot cache already
//!   holds a sufficient fresh aggregate is answered without touching its
//!   sensors at all.
//! * **Redistribution** (Algorithm 2) — shortfall at one subtree (deployment
//!   holes, empty regions, unlucky failures) is redistributed proportionally
//!   over the targets of all nodes still awaiting processing.
//!
//! The priority queue orders pending nodes by target size. Redistribution
//! multiplies every pending target by the same factor, which preserves the
//! ordering — so it is implemented as a single global scale factor instead
//! of a heap rebuild.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::Rng;

use crate::lookup::{GroupResult, Query, QueryOutput, WriteBack};
use crate::probe::ProbeService;
use crate::reading::{Reading, SensorId};
use crate::scratch::QueryScratch;
use crate::stats::QueryStats;
use crate::time::Timestamp;
use crate::tree::{Children, ColrTree, NodeId};

/// Minimum availability used when scaling targets, to bound oversampling of
/// nearly dead subtrees.
const MIN_AVAILABILITY: f64 = 0.05;
/// Targets below this are treated as zero.
const TARGET_EPS: f64 = 1e-9;

struct PqEntry {
    /// Priority in *base* units (effective target = base × queue scale).
    base: f64,
    /// Tie-breaker for deterministic ordering.
    seq: u64,
    /// Node identifier — a `NodeId.0` on the pointer path, an arena index on
    /// the arena path. The queue is payload-agnostic so one pooled heap
    /// serves both layouts.
    node: u32,
    /// Whether an ancestor already applied the availability scale-up.
    scaled: bool,
}

impl PartialEq for PqEntry {
    fn eq(&self, other: &Self) -> bool {
        self.base == other.base && self.seq == other.seq
    }
}
impl Eq for PqEntry {}
impl PartialOrd for PqEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PqEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.base
            .total_cmp(&other.base)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue with O(1) proportional redistribution (Algorithm 2).
///
/// Pooled in [`crate::scratch::QueryScratch`]: callers `reset` it at query
/// start and the backing heap allocation is reused across queries.
pub(crate) struct ScaledPq {
    heap: BinaryHeap<PqEntry>,
    scale: f64,
    sum_base: f64,
    seq: u64,
    /// Ablation: when `false`, `redistribute` is a no-op.
    enabled: bool,
}

impl Default for ScaledPq {
    fn default() -> Self {
        ScaledPq {
            heap: BinaryHeap::new(),
            scale: 1.0,
            sum_base: 0.0,
            seq: 0,
            enabled: true,
        }
    }
}

impl ScaledPq {
    /// Clears the queue for a new query, keeping the heap allocation.
    pub(crate) fn reset(&mut self, enabled: bool) {
        self.heap.clear();
        self.scale = 1.0;
        self.sum_base = 0.0;
        self.seq = 0;
        self.enabled = enabled;
    }

    pub(crate) fn push(&mut self, node: u32, target: f64, scaled: bool) {
        if target <= TARGET_EPS {
            return;
        }
        let base = target / self.scale;
        self.sum_base += base;
        self.seq += 1;
        self.heap.push(PqEntry {
            base,
            seq: self.seq,
            node,
            scaled,
        });
    }

    pub(crate) fn pop(&mut self) -> Option<(u32, f64, bool)> {
        let e = self.heap.pop()?;
        self.sum_base -= e.base;
        Some((e.node, e.base * self.scale, e.scaled))
    }

    /// Distributes `lag` additional target proportionally over every pending
    /// node (Algorithm 2): each priority grows by `lag · p_i / Σp`.
    pub(crate) fn redistribute(&mut self, lag: f64) {
        if !self.enabled {
            return;
        }
        let total = self.sum_base * self.scale;
        if lag <= TARGET_EPS || total <= TARGET_EPS {
            return;
        }
        self.scale *= 1.0 + lag / total;
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The terminal subtree [`ColrTree::serve_terminal`] is asked to serve —
/// either a pointer-tree node or an arena index. One shared implementation
/// keeps the two layouts behaviourally identical by construction.
pub(crate) enum TermTarget<'a> {
    /// A pointer-tree node.
    Ptr(NodeId),
    /// An arena node, with a precomputed "rectangular query fully contains
    /// this subtree" fact that licenses the exact geometric fast paths.
    Arena {
        /// The arena the traversal runs against.
        arena: &'a crate::arena::SamplingArena,
        /// Arena index of the terminal.
        idx: usize,
        /// `true` iff the query region is a `Rect` (the terminal itself is
        /// always contained when this is called).
        rect_contained: bool,
    },
}

impl ColrTree {
    /// Full COLR-Tree execution: Algorithm 1's layered sampling over the
    /// slot-cache tree (pointer layout).
    pub(crate) fn exec_colr<P, R>(
        &self,
        query: &Query,
        probe: &P,
        now: Timestamp,
        rng: &mut R,
        wb: &mut WriteBack,
        scratch: &mut QueryScratch,
    ) -> QueryOutput
    where
        P: ProbeService + ?Sized,
        R: Rng + ?Sized,
    {
        let terminal_level = query.terminal_level.min(self.leaf_level());
        let mut stats = QueryStats::default();
        let mut groups: Vec<GroupResult> = Vec::new();
        let mut readings: Vec<Reading> = Vec::new();

        let root = self.root();
        let target = query.sample_size.unwrap_or(self.node(root).weight as f64);
        let mut pq = std::mem::take(&mut scratch.pq);
        pq.reset(self.config.enable_redistribution);
        pq.push(root.0, target, false);

        while let Some((id, r_eff, scaled)) = pq.pop() {
            let id = NodeId(id);
            stats.nodes_traversed += 1;
            let node = self.node(id);
            crate::flight::with(|f| f.node(node.level));
            if !query.region.intersects_rect(&node.bbox) {
                pq.redistribute(r_eff);
                continue;
            }
            let contained = query.region.contains_rect(&node.bbox);

            // --- Terminal: probe/serve this subtree -----------------------
            if contained && node.level >= terminal_level {
                let fulfilled = self.serve_terminal(
                    TermTarget::Ptr(id),
                    r_eff,
                    scaled,
                    query,
                    probe,
                    now,
                    rng,
                    &mut stats,
                    &mut groups,
                    &mut readings,
                    wb,
                    scratch,
                );
                let want = if scaled && self.config.enable_oversampling {
                    r_eff * self.node_avail(id).max(MIN_AVAILABILITY)
                } else {
                    r_eff
                };
                if fulfilled + TARGET_EPS < want {
                    pq.redistribute(want - fulfilled);
                }
                continue;
            }

            // --- Partition the target among children ----------------------
            scratch.kid_nodes.clear();
            scratch.kid_ow.clear();
            scratch.kid_sensors.clear();
            let mut denom = 0.0f64;
            match &node.children {
                Children::Internal(children) => {
                    for &c in children {
                        let child = self.node(c);
                        let ow = child.query_weight(query.kind_filter) as f64
                            * query.region.overlap_fraction(&child.bbox);
                        if ow > TARGET_EPS {
                            scratch.kid_nodes.push(c.0);
                            scratch.kid_ow.push(ow);
                            denom += ow;
                        }
                    }
                }
                Children::Leaf(sensors) => {
                    for &s in sensors {
                        if query.matches_sensor(self.sensor(s)) {
                            scratch.kid_sensors.push(s);
                            denom += 1.0;
                        }
                    }
                }
            }
            if denom <= TARGET_EPS {
                // Dead end: give the whole target back to pending nodes.
                pq.redistribute(r_eff);
                continue;
            }

            let mut fulfilled = 0.0;
            let mut assigned = 0.0;
            // Readings gathered from per-sensor terminals under this leaf.
            scratch.leaf_readings.clear();
            let mut leaf_target = 0.0;

            for i in 0..scratch.kid_sensors.len() {
                let s = scratch.kid_sensors[i];
                let share = r_eff * 1.0 / denom;
                if share <= TARGET_EPS {
                    continue;
                }
                leaf_target += share;
                fulfilled += self.serve_sensor(
                    s,
                    share,
                    scaled,
                    query,
                    probe,
                    now,
                    rng,
                    &mut stats,
                    &mut scratch.leaf_readings,
                    wb,
                );
            }
            for i in 0..scratch.kid_nodes.len() {
                let c = NodeId(scratch.kid_nodes[i]);
                let ow = scratch.kid_ow[i];
                let share = r_eff * ow / denom;
                if share <= TARGET_EPS {
                    continue;
                }
                let child = self.node(c);
                let child_contained =
                    query.region.contains_rect(&child.bbox) && child.level >= terminal_level;
                if child_contained {
                    // Terminal child: handled when popped; push keeps
                    // the traversal order and redistribution simple.
                    pq.push(c.0, share, scaled);
                    assigned += share;
                } else {
                    let mut push_target = share;
                    let mut child_scaled = scaled;
                    if !scaled
                        && child.level == query.oversample_level
                        && self.config.enable_oversampling
                    {
                        push_target /= self.node_avail(c).max(MIN_AVAILABILITY);
                        child_scaled = true;
                    }
                    pq.push(c.0, push_target, child_scaled);
                    assigned += share;
                }
            }

            if !scratch.leaf_readings.is_empty() || leaf_target > TARGET_EPS {
                let bbox = self.node(id).bbox;
                let mut group =
                    Self::group_over_readings(id, bbox, &scratch.leaf_readings, leaf_target);
                group.results = scratch.leaf_readings.len() as u64;
                groups.push(group);
                readings.append(&mut scratch.leaf_readings);
            }

            let lag = r_eff - fulfilled - assigned;
            if lag > TARGET_EPS {
                pq.redistribute(lag);
            }
        }
        debug_assert!(pq.is_empty());
        scratch.pq = pq;

        QueryOutput {
            groups,
            readings,
            stats,
            latency_ms: 0.0,
        }
    }

    pub(crate) fn group_over_readings(
        node: NodeId,
        bbox: colr_geo::Rect,
        readings: &[Reading],
        target: f64,
    ) -> GroupResult {
        let mut agg = crate::agg::PartialAgg::empty();
        for r in readings {
            agg.insert(r.value);
        }
        GroupResult {
            node,
            bbox,
            agg,
            from_cache: false,
            target,
            results: readings.len() as u64,
            hist: None,
        }
    }

    /// Serves one terminal subtree: cached aggregate shortcut → raw cache →
    /// sampled probes. Returns the number of successful readings credited
    /// against the (raw, pre-oversampling) target.
    ///
    /// Shared by the pointer and arena layouts via [`TermTarget`]; every RNG
    /// draw and every f64 operation below is layout-independent, which is
    /// what makes the two sample streams bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve_terminal<P, R>(
        &self,
        target: TermTarget<'_>,
        r_eff: f64,
        scaled: bool,
        query: &Query,
        probe: &P,
        now: Timestamp,
        rng: &mut R,
        stats: &mut QueryStats,
        groups: &mut Vec<GroupResult>,
        readings: &mut Vec<Reading>,
        wb: &mut WriteBack,
        scratch: &mut QueryScratch,
    ) -> f64
    where
        P: ProbeService + ?Sized,
        R: Rng + ?Sized,
    {
        let (id, bbox, weight) = match &target {
            TermTarget::Ptr(id) => {
                let node = self.node(*id);
                (*id, node.bbox, node.query_weight(query.kind_filter) as f64)
            }
            TermTarget::Arena { arena, idx, .. } => {
                let id = arena.orig(*idx);
                // The arena mirrors the unfiltered weight as f64; filtered
                // weights stay on the pointer node's sorted kind table.
                let weight = match query.kind_filter {
                    None => arena.weight(*idx),
                    Some(k) => self.node(id).query_weight(Some(k)) as f64,
                };
                (id, arena.bbox(*idx), weight)
            }
        };
        let avail = if self.config.enable_oversampling {
            self.node_avail(id).max(MIN_AVAILABILITY)
        } else {
            1.0
        };
        // The desired number of *successful* readings from this subtree.
        let want = if scaled { r_eff * avail } else { r_eff }.min(weight.max(1.0));

        // 1. Aggregate-cache shortcut: a fresh cached aggregate covering at
        //    least the desired sample answers the terminal outright.
        //    Type-filtered queries consult the per-type sub-aggregates.
        //    One stripe lock acquisition serves the whole check.
        let (agg, slots, hist) = self.with_cache(id, |nc| {
            let (agg, slots) = match query.kind_filter {
                None => nc.cache.usable(now, query.staleness),
                Some(k) => nc.cache.usable_kind(now, query.staleness, k),
            };
            let hist = if !agg.is_empty() && (agg.count as f64) + TARGET_EPS >= want.min(weight) {
                nc.cache.usable_histogram(now, query.staleness)
            } else {
                None
            };
            (agg, slots, hist)
        });
        if !agg.is_empty() && (agg.count as f64) + TARGET_EPS >= want.min(weight) {
            stats.cache_nodes_used += 1;
            stats.slots_combined += slots;
            crate::flight::with(|f| f.cache_hit(self.node(id).level, slots));
            groups.push(GroupResult {
                node: id,
                bbox,
                agg,
                from_cache: true,
                target: want,
                results: agg.count,
                hist,
            });
            return want;
        }

        // The aggregate shortcut fell short of coverage for this terminal.
        crate::flight::with(|f| f.cache_miss(self.node(id).level));

        // 2. Raw cached readings count against the target (line 9 / 15).
        scratch.cached.clear();
        scratch.candidates.clear();
        match &target {
            TermTarget::Ptr(id) => self.terminal_scan_into(
                *id,
                query,
                now,
                stats,
                &mut scratch.cached,
                &mut scratch.candidates,
                &mut scratch.stack,
            ),
            TermTarget::Arena {
                arena,
                idx,
                rect_contained,
            } => self.terminal_scan_arena(
                arena,
                *idx,
                *rect_contained,
                query,
                now,
                stats,
                &mut scratch.cached,
                &mut scratch.candidates,
                &mut scratch.stack,
            ),
        }
        stats.readings_from_cache += scratch.cached.len() as u64;
        crate::flight::with(|f| f.cached_readings(scratch.cached.len() as u64));
        if !scratch.cached.is_empty() {
            stats.cache_nodes_used += 1;
            crate::flight::with(|f| f.cache_hit(self.node(id).level, 0));
        }
        let need = want - scratch.cached.len() as f64;

        // 3. Oversampled probing of the remainder (lines 11–14).
        let probe_target = if need <= TARGET_EPS {
            0.0
        } else if scaled {
            // Target was inflated upstream; spend what remains of it.
            (r_eff - scratch.cached.len() as f64).max(0.0)
        } else {
            need / avail
        };
        // `attempted` is the paper's `|s|` accounting in expectation units:
        // stochastic rounding of fractional targets must NOT trigger
        // redistribution (the rounding is unbiased by construction — pushing
        // only the downside back into the queue would inflate the sample).
        // Only a *structural* shortfall — fewer candidates than the target —
        // redistributes (deployment holes, Algorithm 1 line 22).
        let attempted = probe_target.min(scratch.candidates.len() as f64);
        let k = stochastic_round(attempted, rng).min(scratch.candidates.len());
        // Partial Fisher–Yates: uniform k-subset of the candidates.
        for i in 0..k {
            let j = rng.random_range(i..scratch.candidates.len());
            scratch.candidates.swap(i, j);
        }
        let probed =
            self.probe_sensors(&scratch.candidates[..k], probe, query, now, stats, true, wb);

        let cached_count = scratch.cached.len();
        let mut agg = crate::agg::PartialAgg::empty();
        for r in scratch.cached.iter().chain(probed.iter()) {
            agg.insert(r.value);
        }
        groups.push(GroupResult {
            node: id,
            bbox,
            agg,
            from_cache: false,
            target: want,
            results: (cached_count + probed.len()) as u64,
            hist: None,
        });
        readings.append(&mut scratch.cached);
        readings.extend(probed);
        // Expected successes from the attempt, independent of rounding and
        // per-probe luck (oversampling already compensates failures).
        let credit = cached_count as f64 + attempted * avail;
        credit.min(want)
    }

    /// Serves a single-sensor terminal (a sensor child of a partially
    /// overlapped leaf). Returns the credit against the raw target.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve_sensor<P, R>(
        &self,
        s: SensorId,
        share: f64,
        scaled: bool,
        query: &Query,
        probe: &P,
        now: Timestamp,
        rng: &mut R,
        stats: &mut QueryStats,
        out: &mut Vec<Reading>,
        wb: &mut WriteBack,
    ) -> f64
    where
        P: ProbeService + ?Sized,
        R: Rng + ?Sized,
    {
        let avail = if self.config.enable_oversampling {
            self.sensor_avail(s).max(MIN_AVAILABILITY)
        } else {
            1.0
        };
        let want = if scaled { share * avail } else { share }.min(1.0);

        // A cached fresh reading satisfies the sensor without a probe and is
        // always included (Algorithm 1 line 15: `sample ∪ d ∪ c_i`).
        let leaf = self.home_leaf(s);
        let fresh = self.with_cache(leaf, |nc| {
            nc.entry(s)
                .filter(|e| e.reading.is_fresh(now, query.staleness))
                .map(|e| e.reading)
        });
        if let Some(r) = fresh {
            stats.readings_from_cache += 1;
            crate::flight::with(|f| f.cached_readings(1));
            out.push(r);
            return want;
        }

        let p = if scaled { share } else { want / avail }.clamp(0.0, 1.0);
        if !rng.random_bool(p) {
            return want; // not selected; expectation already accounted
        }
        let got = self.probe_sensors(&[s], probe, query, now, stats, true, wb);
        if let Some(r) = got.first() {
            out.push(*r);
        }
        // Full credit either way: the selection was made with the
        // availability-compensated probability, so expected successes match
        // the share; per-probe failures are absorbed by oversampling rather
        // than redistributed (which would bias the sample upward).
        want
    }
}

/// Rounds `x` to an integer stochastically so the expectation is preserved:
/// `⌊x⌋ + Bernoulli(frac(x))`.
pub(crate) fn stochastic_round<R: Rng + ?Sized>(x: f64, rng: &mut R) -> usize {
    if x <= 0.0 {
        return 0;
    }
    let floor = x.floor();
    let frac = x - floor;
    let mut k = floor as usize;
    if frac > 0.0 && rng.random_bool(frac.min(1.0)) {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::Mode;
    use crate::probe::AlwaysAvailable;
    use crate::reading::SensorMeta;
    use crate::time::TimeDelta;
    use crate::tree::ColrConfig;
    use colr_geo::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EXPIRY_MS: u64 = 300_000;

    fn grid_tree(side: usize, availability: f64) -> ColrTree {
        let sensors: Vec<SensorMeta> = (0..side * side)
            .map(|i| {
                SensorMeta::new(
                    i as u32,
                    Point::new((i % side) as f64, (i / side) as f64),
                    TimeDelta::from_millis(EXPIRY_MS),
                    availability,
                )
            })
            .collect();
        ColrTree::build(sensors, ColrConfig::default(), 42)
    }

    fn sample_query(rect: Rect, r: f64) -> Query {
        Query::range(rect, TimeDelta::from_mins(10))
            .with_terminal_level(2)
            .with_oversample_level(1)
            .with_sample_size(r)
    }

    #[test]
    fn stochastic_round_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let x = 2.3;
        let total: usize = (0..trials).map(|_| stochastic_round(x, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - x).abs() < 0.05, "mean {mean} too far from {x}");
    }

    #[test]
    fn stochastic_round_exact_on_integers() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(stochastic_round(3.0, &mut rng), 3);
        assert_eq!(stochastic_round(0.0, &mut rng), 0);
        assert_eq!(stochastic_round(-1.0, &mut rng), 0);
    }

    #[test]
    fn scaled_pq_pops_in_priority_order() {
        let mut pq = ScaledPq::default();
        pq.push(1, 1.0, false);
        pq.push(2, 5.0, false);
        pq.push(3, 3.0, false);
        assert_eq!(pq.pop().unwrap().0, 2);
        assert_eq!(pq.pop().unwrap().0, 3);
        assert_eq!(pq.pop().unwrap().0, 1);
        assert!(pq.pop().is_none());
    }

    #[test]
    fn scaled_pq_redistribute_grows_targets_proportionally() {
        let mut pq = ScaledPq::default();
        pq.push(1, 2.0, false);
        pq.push(2, 6.0, false);
        pq.redistribute(4.0); // total 8 → scale 1.5
        let (n, t, _) = pq.pop().unwrap();
        assert_eq!(n, 2);
        assert!((t - 9.0).abs() < 1e-9);
        let (_, t, _) = pq.pop().unwrap();
        assert!((t - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_pq_push_after_redistribute_uses_current_scale() {
        let mut pq = ScaledPq::default();
        pq.push(1, 4.0, false);
        pq.redistribute(4.0); // scale 2
        pq.push(2, 4.0, false); // effective 4.0 at push time
        let (n, t, _) = pq.pop().unwrap();
        assert_eq!(n, 1);
        assert!((t - 8.0).abs() < 1e-9);
        let (_, t, _) = pq.pop().unwrap();
        assert!((t - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_probes_roughly_target_many_runs() {
        // Theorem 1: expected sample size ≈ R (availability 1, cold cache).
        let region = Rect::from_coords(-0.5, -0.5, 15.5, 15.5); // all 256
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 60;
        let r = 30.0;
        let mut total = 0usize;
        for t in 0..trials {
            let tree = grid_tree(16, 1.0);
            let probe = AlwaysAvailable {
                expiry_ms: EXPIRY_MS,
            };
            let out = tree.execute(
                &sample_query(region, r),
                Mode::Colr,
                &probe,
                Timestamp(1_000 + t),
                &mut rng,
            );
            total += out.readings.len();
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - r).abs() < r * 0.15,
            "mean sample size {mean} too far from target {r}"
        );
    }

    #[test]
    fn sampling_contacts_far_fewer_sensors_than_rtree() {
        let region = Rect::from_coords(-0.5, -0.5, 15.5, 15.5);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = grid_tree(16, 1.0);
        let probe = AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        };
        let out = tree.execute(
            &sample_query(region, 20.0),
            Mode::Colr,
            &probe,
            Timestamp(1_000),
            &mut rng,
        );
        assert!(
            out.stats.sensors_probed < 60,
            "probed {} for a target of 20",
            out.stats.sensors_probed
        );
        assert!(out.stats.sensors_probed > 0);
    }

    #[test]
    fn oversampling_compensates_for_unavailability() {
        // With availability 0.5, ~2R probes should yield ~R readings.
        let region = Rect::from_coords(-0.5, -0.5, 15.5, 15.5);
        let mut rng = StdRng::seed_from_u64(5);
        let r = 30.0;
        let trials = 60;
        let mut got = 0usize;
        let mut probed = 0u64;
        for t in 0..trials {
            let tree = grid_tree(16, 0.5);
            // Simulated network honouring availability 0.5 via the rng,
            // locked so the service works from behind `&self`.
            struct HalfAvailable(std::sync::Mutex<StdRng>);
            impl ProbeService for HalfAvailable {
                fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
                    let mut rng = self.0.lock().unwrap();
                    ids.iter()
                        .map(|&id| {
                            rng.random_bool(0.5).then_some(Reading {
                                sensor: id,
                                value: 1.0,
                                timestamp: now,
                                expires_at: now + TimeDelta::from_millis(EXPIRY_MS),
                            })
                        })
                        .collect()
                }
            }
            let probe = HalfAvailable(std::sync::Mutex::new(StdRng::seed_from_u64(100 + t)));
            let out = tree.execute(
                &sample_query(region, r),
                Mode::Colr,
                &probe,
                Timestamp(1_000),
                &mut rng,
            );
            got += out.readings.len();
            probed += out.stats.sensors_probed;
        }
        let mean_got = got as f64 / trials as f64;
        let mean_probed = probed as f64 / trials as f64;
        assert!(
            (mean_got - r).abs() < r * 0.25,
            "mean successes {mean_got} too far from target {r}"
        );
        assert!(
            mean_probed > 1.5 * r && mean_probed < 3.0 * r,
            "mean probes {mean_probed} not ≈ 2R"
        );
    }

    #[test]
    fn uniform_inclusion_probability() {
        // Theorem 2: every sensor included with probability ≈ R/N.
        let side = 12; // 144 sensors
        let region = Rect::from_coords(-0.5, -0.5, 11.5, 11.5);
        let r = 24.0;
        let n = (side * side) as f64;
        let trials = 400;
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = vec![0u32; side * side];
        for t in 0..trials {
            let tree = grid_tree(side, 1.0);
            let probe = AlwaysAvailable {
                expiry_ms: EXPIRY_MS,
            };
            let out = tree.execute(
                &sample_query(region, r),
                Mode::Colr,
                &probe,
                Timestamp(1_000 + t),
                &mut rng,
            );
            for reading in &out.readings {
                counts[reading.sensor.index()] += 1;
            }
        }
        let expected = r / n; // per-trial inclusion probability
        let mean_incl = counts.iter().map(|&c| c as f64).sum::<f64>() / (trials as f64 * n);
        assert!(
            (mean_incl - expected).abs() < expected * 0.15,
            "mean inclusion {mean_incl} vs expected {expected}"
        );
        // No sensor should be wildly over- or under-represented.
        let max = counts.iter().copied().max().unwrap() as f64 / trials as f64;
        let min = counts.iter().copied().min().unwrap() as f64 / trials as f64;
        assert!(max < expected * 3.0, "max inclusion {max} vs {expected}");
        assert!(min > expected * 0.15, "min inclusion {min} vs {expected}");
    }

    #[test]
    fn disabled_redistribution_never_inflates_targets() {
        let mut pq = ScaledPq::default();
        pq.reset(false);
        pq.push(1, 2.0, false);
        pq.redistribute(100.0);
        let (_, t, _) = pq.pop().unwrap();
        assert_eq!(t, 2.0);
    }

    #[test]
    fn disabled_oversampling_probes_fewer_under_failures() {
        // With availability 0.5 advertised, oversampling ~doubles probes;
        // disabling it keeps probes near the raw target.
        let region = Rect::from_coords(-0.5, -0.5, 15.5, 15.5);
        let r = 40.0;
        let trials = 30;
        let mut probes_on = 0u64;
        let mut probes_off = 0u64;
        for t in 0..trials {
            for enable in [true, false] {
                let sensors: Vec<SensorMeta> = (0..256)
                    .map(|i| {
                        SensorMeta::new(
                            i as u32,
                            Point::new((i % 16) as f64, (i / 16) as f64),
                            TimeDelta::from_millis(EXPIRY_MS),
                            0.5,
                        )
                    })
                    .collect();
                let config = ColrConfig {
                    enable_oversampling: enable,
                    ..Default::default()
                };
                let tree = ColrTree::build(sensors, config, 42);
                let probe = AlwaysAvailable {
                    expiry_ms: EXPIRY_MS,
                };
                let mut rng = StdRng::seed_from_u64(1000 + t);
                let out = tree.execute(
                    &sample_query(region, r),
                    Mode::Colr,
                    &probe,
                    Timestamp(1_000),
                    &mut rng,
                );
                if enable {
                    probes_on += out.stats.sensors_probed;
                } else {
                    probes_off += out.stats.sensors_probed;
                }
            }
        }
        assert!(
            probes_on as f64 > probes_off as f64 * 1.5,
            "oversampling on {probes_on} vs off {probes_off}"
        );
    }

    #[test]
    fn warm_cache_reduces_probes_in_colr_mode() {
        let region = Rect::from_coords(-0.5, -0.5, 15.5, 15.5);
        let mut rng = StdRng::seed_from_u64(9);
        let tree = grid_tree(16, 1.0);
        let probe = AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        };
        let q = sample_query(region, 40.0);
        let cold = tree.execute(&q, Mode::Colr, &probe, Timestamp(1_000), &mut rng);
        assert!(cold.stats.sensors_probed > 0);
        let warm = tree.execute(&q, Mode::Colr, &probe, Timestamp(2_000), &mut rng);
        assert!(
            warm.stats.sensors_probed < cold.stats.sensors_probed,
            "warm {} !< cold {}",
            warm.stats.sensors_probed,
            cold.stats.sensors_probed
        );
        assert!(warm.stats.cache_nodes_used > 0 || warm.stats.readings_from_cache > 0);
    }

    #[test]
    fn sample_size_zero_probes_nothing() {
        let region = Rect::from_coords(-0.5, -0.5, 15.5, 15.5);
        let mut rng = StdRng::seed_from_u64(13);
        let tree = grid_tree(16, 1.0);
        let probe = AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        };
        let out = tree.execute(
            &sample_query(region, 0.0),
            Mode::Colr,
            &probe,
            Timestamp(1_000),
            &mut rng,
        );
        assert_eq!(out.stats.sensors_probed, 0);
        assert!(out.readings.is_empty());
    }

    #[test]
    fn disjoint_region_samples_nothing() {
        let region = Rect::from_coords(100.0, 100.0, 110.0, 110.0);
        let mut rng = StdRng::seed_from_u64(13);
        let tree = grid_tree(8, 1.0);
        let probe = AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        };
        let out = tree.execute(
            &sample_query(region, 10.0),
            Mode::Colr,
            &probe,
            Timestamp(1_000),
            &mut rng,
        );
        assert_eq!(out.stats.sensors_probed, 0);
        assert!(out.groups.is_empty());
    }

    #[test]
    fn partial_region_samples_only_inside() {
        // Region covering the left half: no reading from the right half.
        let side = 12;
        let region = Rect::from_coords(-0.5, -0.5, 5.5, 11.5);
        let mut rng = StdRng::seed_from_u64(23);
        let tree = grid_tree(side, 1.0);
        let probe = AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        };
        let out = tree.execute(
            &sample_query(region, 20.0),
            Mode::Colr,
            &probe,
            Timestamp(1_000),
            &mut rng,
        );
        for r in &out.readings {
            let loc = tree.sensor_location(r.sensor);
            assert!(loc.x <= 5.5, "sampled sensor outside region at {loc:?}");
        }
        assert!(!out.readings.is_empty());
    }

    #[test]
    fn groups_report_targets_for_pde() {
        let region = Rect::from_coords(-0.5, -0.5, 15.5, 15.5);
        let mut rng = StdRng::seed_from_u64(29);
        let tree = grid_tree(16, 1.0);
        let probe = AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        };
        let out = tree.execute(
            &sample_query(region, 32.0),
            Mode::Colr,
            &probe,
            Timestamp(1_000),
            &mut rng,
        );
        assert!(!out.groups.is_empty());
        let total_target: f64 = out.groups.iter().map(|g| g.target).sum();
        assert!(
            (total_target - 32.0).abs() < 32.0 * 0.5,
            "sum of terminal targets {total_target} should approximate R"
        );
    }
}
