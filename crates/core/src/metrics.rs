//! Evaluation metrics (Section VII-D).
//!
//! * **Target accuracy** — how well the sampler meets the `SAMPLESIZE`
//!   target: `min(target, probed) / min(target, unsampled result size)`.
//! * **Probe discretisation error (pde)** — the relative error between the
//!   per-terminal targets and what each terminal actually contributed,
//!   capturing the spatial uniformity of the answer (cached aggregates count
//!   with their cached result size).
//! * **Relative error** — of an approximate aggregate vs ground truth
//!   (Fig 7).

use crate::lookup::QueryOutput;

/// Target accuracy of a sampled query (Fig 6, left):
/// `min(target, contributed) / min(target, unsampled_result_size)`.
///
/// `unsampled_result_size` is the number of sensors in the region — what a
/// non-sampled lookup would return.
pub fn target_accuracy(target: f64, contributed: u64, unsampled_result_size: u64) -> f64 {
    let denom = target.min(unsampled_result_size as f64);
    if denom <= 0.0 {
        return 1.0;
    }
    (target.min(contributed as f64) / denom).min(1.0)
}

/// Target accuracy computed from a query output.
pub fn target_accuracy_of(out: &QueryOutput, target: f64, unsampled_result_size: u64) -> f64 {
    target_accuracy(target, out.result_size(), unsampled_result_size)
}

/// Probe discretisation error (Fig 6, right):
/// `Σ_i (target(i) − #results(i)) / target(i)` over terminals with a
/// positive target, normalised by the number of such terminals so queries of
/// different shapes are comparable.
pub fn probe_discretisation_error(out: &QueryOutput) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for g in &out.groups {
        if g.target > 0.0 {
            sum += (g.target - g.results as f64) / g.target;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Relative error `|approx − exact| / |exact|`; zero when both are zero.
pub fn relative_error(approx: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if approx == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (approx - exact).abs() / exact.abs()
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::PartialAgg;
    use crate::lookup::GroupResult;
    use crate::stats::QueryStats;
    use crate::tree::NodeId;
    use colr_geo::Rect;

    fn out_with_groups(groups: Vec<(f64, u64)>) -> QueryOutput {
        QueryOutput {
            groups: groups
                .into_iter()
                .map(|(target, results)| GroupResult {
                    node: NodeId(0),
                    bbox: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
                    agg: {
                        let mut a = PartialAgg::empty();
                        for _ in 0..results {
                            a.insert(1.0);
                        }
                        a
                    },
                    from_cache: false,
                    target,
                    results,
                    hist: None,
                })
                .collect(),
            readings: Vec::new(),
            stats: QueryStats::default(),
            latency_ms: 0.0,
        }
    }

    #[test]
    fn target_accuracy_perfect_when_target_met() {
        assert_eq!(target_accuracy(100.0, 100, 1_000), 1.0);
        assert_eq!(target_accuracy(100.0, 250, 1_000), 1.0); // surplus capped
    }

    #[test]
    fn target_accuracy_partial() {
        assert!((target_accuracy(100.0, 93, 1_000) - 0.93).abs() < 1e-12);
    }

    #[test]
    fn target_accuracy_when_region_smaller_than_target() {
        // Region holds 50 sensors, target 100 → full marks for 50.
        assert_eq!(target_accuracy(100.0, 50, 50), 1.0);
        assert!((target_accuracy(100.0, 25, 50) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn target_accuracy_empty_region_is_one() {
        assert_eq!(target_accuracy(100.0, 0, 0), 1.0);
    }

    #[test]
    fn pde_zero_when_targets_met_exactly() {
        let out = out_with_groups(vec![(10.0, 10), (5.0, 5)]);
        assert_eq!(probe_discretisation_error(&out), 0.0);
    }

    #[test]
    fn pde_positive_when_under_delivering() {
        let out = out_with_groups(vec![(10.0, 5)]);
        assert!((probe_discretisation_error(&out) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pde_negative_when_cached_aggregates_overshoot() {
        // The Fig 6 discussion: cached aggregates comprise more sensors than
        // the terminal's target → negative per-terminal error (bias).
        let out = out_with_groups(vec![(10.0, 30)]);
        assert!(probe_discretisation_error(&out) < 0.0);
    }

    #[test]
    fn pde_ignores_zero_target_groups() {
        let out = out_with_groups(vec![(0.0, 7), (10.0, 10)]);
        assert_eq!(probe_discretisation_error(&out), 0.0);
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
