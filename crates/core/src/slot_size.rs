//! Optimal slot size (Section IV-C).
//!
//! The slot width `Δ` trades off two forces. Larger slots mean fewer partial
//! results to combine per query (lower *cost*); smaller slots keep partially
//! aggregated data valid for longer before the window slide discards it
//! (higher *utility*). The paper's model, with `t_max` normalised to 1:
//!
//! ```text
//! cost(Δ)    ~ ⌊T/Δ⌋ + ⌈T/Δ⌉·f + (T − ⌊T/Δ⌋·Δ)·c        (per query, mean over workload)
//! utility(Δ) ~ Σ_i n_i · (i−1) · Δ                        (k = ⌈1/Δ⌉ slots)
//! ```
//!
//! where `T` is a query's (normalised) time window, `f` the fraction of slot
//! accesses that trigger collection, `c` the collection cost relative to
//! combining one slot, and `n_i` the fraction of sensors whose expiry time
//! falls in slot `i`. COLR-Tree is configured with the `Δ` maximising
//! `utility/cost` for the target workload (Fig 2).

/// Workload description feeding the slot-size analysis. All times are
/// normalised so `t_max = 1`.
#[derive(Debug, Clone)]
pub struct SlotSizeWorkload {
    /// Normalised query time windows `T ∈ (0, 1]` drawn from the query
    /// workload.
    pub query_windows: Vec<f64>,
    /// Fraction of slot accesses where data must be collected from sensors
    /// (a cache-miss rate; depends on query inter-arrival vs expiry).
    pub collection_fraction: f64,
    /// Cost of collecting a slot's data from sensors, normalised to the cost
    /// of combining one cached slot.
    pub collection_cost: f64,
    /// Normalised sensor expiry times in `(0, 1]` (their distribution gives
    /// the `n_i`).
    pub expiry_times: Vec<f64>,
}

impl SlotSizeWorkload {
    /// Mean per-query cost at slot width `delta`.
    pub fn cost(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta <= 1.0, "Δ must be in (0, 1]");
        let f = self.collection_fraction;
        let c = self.collection_cost;
        let total: f64 = self
            .query_windows
            .iter()
            .map(|&t| {
                let full_slots = (t / delta).floor();
                let touched_slots = (t / delta).ceil();
                let leftover = t - full_slots * delta;
                full_slots + touched_slots * f + leftover * c
            })
            .sum();
        total / self.query_windows.len().max(1) as f64
    }

    /// Utility at slot width `delta`: the mean time a sensor's data remains
    /// valid in aggregated form. A sensor whose expiry falls in slot `i`
    /// (1-based) stays cached for `(i−1)·Δ` before the slide discards it.
    pub fn utility(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta <= 1.0, "Δ must be in (0, 1]");
        let total: f64 = self
            .expiry_times
            .iter()
            .map(|&e| {
                // 1-based slot index of the expiry time.
                let i = (e / delta).ceil().max(1.0);
                (i - 1.0) * delta
            })
            .sum();
        total / self.expiry_times.len().max(1) as f64
    }

    /// The utility/cost ratio the paper maximises.
    pub fn ratio(&self, delta: f64) -> f64 {
        let c = self.cost(delta);
        if c <= 0.0 {
            0.0
        } else {
            self.utility(delta) / c
        }
    }

    /// Sweeps `deltas` and returns `(delta, ratio)` pairs — the series of
    /// Fig 2.
    pub fn sweep(&self, deltas: &[f64]) -> Vec<(f64, f64)> {
        deltas.iter().map(|&d| (d, self.ratio(d))).collect()
    }

    /// The slot width among `deltas` with the maximum utility/cost ratio.
    pub fn optimal_slot_size(&self, deltas: &[f64]) -> f64 {
        self.sweep(deltas)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(d, _)| d)
            .unwrap_or(1.0)
    }
}

/// The standard `Δ` grid used by the Fig 2 sweep: 0.05, 0.10, …, 1.0.
pub fn default_delta_grid() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(expiry: Vec<f64>) -> SlotSizeWorkload {
        SlotSizeWorkload {
            query_windows: vec![0.3, 0.5, 0.8],
            collection_fraction: 0.3,
            collection_cost: 10.0,
            expiry_times: expiry,
        }
    }

    #[test]
    fn utility_is_zero_at_full_window() {
        // One slot (Δ=1): everything lives in slot 1, discarded immediately
        // on slide → zero retained utility.
        let w = workload(vec![0.2, 0.5, 0.9]);
        assert_eq!(w.utility(1.0), 0.0);
    }

    #[test]
    fn utility_grows_as_slots_shrink() {
        let w = workload(vec![0.5; 100]);
        assert!(w.utility(0.1) > w.utility(0.5));
        assert!(w.utility(0.25) > w.utility(0.5));
    }

    #[test]
    fn utility_matches_hand_computation() {
        // Expiry 0.5 with Δ=0.2 → slot ⌈0.5/0.2⌉ = 3 → utility (3−1)·0.2 = 0.4.
        let w = workload(vec![0.5]);
        assert!((w.utility(0.2) - 0.4).abs() < 1e-12);
        // Expiry 0.9 with Δ=0.5 → slot 2 → utility 0.5.
        let w = workload(vec![0.9]);
        assert!((w.utility(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cost_decreases_with_larger_slots_for_aligned_windows() {
        let w = SlotSizeWorkload {
            query_windows: vec![1.0],
            collection_fraction: 0.2,
            collection_cost: 5.0,
            expiry_times: vec![0.5],
        };
        // T=1: Δ=0.25 → 4 + 4·0.2 = 4.8; Δ=0.5 → 2 + 2·0.2 = 2.4.
        assert!(w.cost(0.25) > w.cost(0.5));
    }

    #[test]
    fn cost_penalises_uncovered_remainder() {
        let w = SlotSizeWorkload {
            query_windows: vec![0.5],
            collection_fraction: 0.0,
            collection_cost: 100.0,
            expiry_times: vec![0.5],
        };
        // Δ=0.4: one full slot + 0.1 uncovered → 1 + 0.1·100 = 11.
        assert!((w.cost(0.4) - 12.0).abs() < 1.01); // ⌈0.5/0.4⌉·0 + 1 + 10
                                                    // Δ=0.5 covers exactly → cost 1.
        assert!((w.cost(0.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_expiry_has_interior_optimum() {
        // The paper reports Δ* ≈ 0.5 for uniform expiry; at minimum the
        // optimum must be interior (neither the smallest nor largest Δ).
        let expiry: Vec<f64> = (1..=1000).map(|i| i as f64 / 1000.0).collect();
        let w = SlotSizeWorkload {
            query_windows: vec![0.5, 0.7, 1.0],
            collection_fraction: 0.3,
            collection_cost: 3.0,
            expiry_times: expiry,
        };
        let grid = default_delta_grid();
        let opt = w.optimal_slot_size(&grid);
        assert!(opt > grid[0] && opt < 1.0, "optimum {opt} not interior");
    }

    #[test]
    fn sweep_covers_grid() {
        let w = workload(vec![0.5]);
        let grid = default_delta_grid();
        let sweep = w.sweep(&grid);
        assert_eq!(sweep.len(), grid.len());
        assert!(sweep.iter().all(|&(_, r)| r.is_finite() && r >= 0.0));
    }

    #[test]
    #[should_panic(expected = "Δ must be in (0, 1]")]
    fn rejects_zero_delta() {
        workload(vec![0.5]).cost(0.0);
    }
}
