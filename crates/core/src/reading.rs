//! Sensor identity, static metadata, and live readings.

use colr_geo::Point;

use crate::time::{TimeDelta, Timestamp};

/// Dense identifier of a registered sensor (index into the portal's sensor
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SensorId(pub u32);

impl SensorId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static metadata a publisher registers with the portal (Section III-A):
/// location, the expiry duration its readings carry, and the historically
/// observed availability used by the oversampling step of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorMeta {
    /// The sensor's identifier.
    pub id: SensorId,
    /// Fixed location. COLR-Tree assumes locations change rarely and the tree
    /// is periodically rebuilt to reflect moves.
    pub location: Point,
    /// How long each reading from this sensor remains valid. Heterogeneous
    /// across sensors; the maximum over all sensors is the slot-cache window
    /// `t_max`.
    pub expiry: TimeDelta,
    /// Historical probability in `[0, 1]` that a probe of this sensor
    /// succeeds (the `p_i` of Section V-A).
    pub availability: f64,
    /// Application-defined sensor type (SensorMap's "types of sensors"
    /// metadata); 0 by default. Queries may filter on it.
    pub kind: u16,
}

impl SensorMeta {
    /// Convenience constructor.
    ///
    /// Debug builds reject non-finite or out-of-range inputs loudly: a
    /// `NaN` availability would otherwise slip through every downstream
    /// `max`/`clamp` (NaN comparisons are all false) and silently poison
    /// the tree's availability means.
    pub fn new(id: u32, location: Point, expiry: TimeDelta, availability: f64) -> Self {
        debug_assert!(
            availability.is_finite(),
            "sensor {id}: availability must be finite, got {availability}"
        );
        debug_assert!(
            (0.0..=1.0).contains(&availability),
            "sensor {id}: availability must be a probability in [0, 1], got {availability}"
        );
        debug_assert!(
            location.x.is_finite() && location.y.is_finite(),
            "sensor {id}: location must be finite, got ({}, {})",
            location.x,
            location.y
        );
        SensorMeta {
            id: SensorId(id),
            location,
            expiry,
            availability,
            kind: 0,
        }
    }

    /// Sets the application-defined sensor type.
    pub fn with_kind(mut self, kind: u16) -> Self {
        self.kind = kind;
        self
    }
}

/// One live data point collected from a sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// Source sensor.
    pub sensor: SensorId,
    /// Observed value (waiting time, water discharge, temperature, ...).
    pub value: f64,
    /// When the sensor produced the reading.
    pub timestamp: Timestamp,
    /// Publisher-specified instant after which the reading is invalid
    /// (`timestamp + meta.expiry`).
    pub expires_at: Timestamp,
}

impl Reading {
    /// `true` while the reading is valid at `now` (expiry instant exclusive).
    #[inline]
    pub fn is_live(&self, now: Timestamp) -> bool {
        self.expires_at > now
    }

    /// `true` when the reading satisfies a query freshness bound of
    /// `staleness` at `now`, i.e. it was produced within the last
    /// `staleness` and has not expired.
    #[inline]
    pub fn is_fresh(&self, now: Timestamp, staleness: TimeDelta) -> bool {
        self.is_live(now) && self.timestamp >= now.saturating_sub(staleness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(ts: u64, exp: u64) -> Reading {
        Reading {
            sensor: SensorId(1),
            value: 1.0,
            timestamp: Timestamp(ts),
            expires_at: Timestamp(exp),
        }
    }

    #[test]
    fn liveness_is_exclusive_at_expiry() {
        let r = reading(0, 100);
        assert!(r.is_live(Timestamp(99)));
        assert!(!r.is_live(Timestamp(100)));
        assert!(!r.is_live(Timestamp(101)));
    }

    #[test]
    fn freshness_requires_both_bounds() {
        let r = reading(1_000, 10_000);
        // Within staleness, not expired.
        assert!(r.is_fresh(Timestamp(1_500), TimeDelta::from_millis(600)));
        // Too stale.
        assert!(!r.is_fresh(Timestamp(2_000), TimeDelta::from_millis(600)));
        // Fresh by timestamp but expired.
        let r2 = reading(1_000, 1_200);
        assert!(!r2.is_fresh(Timestamp(1_500), TimeDelta::from_millis(600)));
    }

    #[test]
    fn freshness_saturates_at_epoch() {
        let r = reading(0, 10);
        assert!(r.is_fresh(Timestamp(5), TimeDelta::from_millis(100)));
    }

    #[test]
    fn meta_constructor_assigns_fields() {
        let m = SensorMeta::new(7, Point::new(1.0, 2.0), TimeDelta::from_mins(5), 0.9);
        assert_eq!(m.id, SensorId(7));
        assert_eq!(m.id.index(), 7);
        assert_eq!(m.expiry, TimeDelta::from_mins(5));
        assert_eq!(m.availability, 0.9);
        assert_eq!(m.kind, 0);
        assert_eq!(m.with_kind(3).kind, 3);
    }
}
