//! The COLR-Tree structure and its cache-maintenance operations.
//!
//! A [`ColrTree`] is an R-Tree bulk-built bottom-up over the registered
//! sensors (Section III-C), where **every node carries a slot cache**
//! (Section IV-B): leaves cache raw readings, internal nodes cache per-slot
//! partial aggregates over their descendants' readings. All caches share one
//! globally aligned slotting scheme, so maintenance is strictly bottom-up:
//!
//! * **insert/update** — a probed reading lands in its home leaf and its
//!   value is added to the matching slot of every ancestor; replacing an
//!   existing reading first decrements the old value (rebuilding any slot
//!   whose aggregate cannot be decremented — the min/max case);
//! * **roll** — when simulated time crosses a slot boundary the window
//!   slides: the all-expired slots are dropped at every node at once, and the
//!   raw readings they covered are expunged from the leaves;
//! * **evict** — a tree-wide raw-cache capacity constraint is enforced by
//!   evicting the *least recently fetched* readings from the *oldest* slot
//!   (Section IV-A's replacement policy), maintained here as a global
//!   `(slot, fetched_at, sensor)` ordering.
//!
//! ## Concurrency
//!
//! The static index (nodes, bounding boxes, sensor registry) is immutable
//! after construction and read without synchronisation. The *mutable* state —
//! every node's [`NodeCache`] — lives outside the node arena, sharded over
//! [`CACHE_STRIPES`] reader–writer locks keyed by node id, so concurrent
//! queries can read (and write back to) disjoint parts of the tree without
//! contending on a single lock. Cross-node bookkeeping (the window base, the
//! eviction order, the cached-reading count) sits behind one maintenance
//! mutex that serialises mutators; readers never take it, so a query that is
//! purely cache-served touches only the stripes it reads.
//!
//! Lock ordering is `maint → (one stripe at a time)`: mutators hold the
//! maintenance lock across a whole logical operation and acquire stripe locks
//! one node at a time; readers hold at most one stripe lock at any instant
//! and never take the maintenance lock while holding a stripe. This makes
//! deadlock impossible by construction. Concurrent readers may observe a
//! bottom-up update mid-flight (a leaf updated, an ancestor not yet) — the
//! same transient inconsistency the paper's portal tolerates between cache
//! triggers; per-node state is always internally consistent.

use std::collections::BTreeSet;
use std::sync::Arc;

use colr_geo::{Point, Rect, Region};
use parking_lot::{Mutex, RwLock};

use crate::reading::{Reading, SensorId, SensorMeta};
use crate::slot_cache::{RemoveOutcome, Slot, SlotCache, SlotConfig};
use crate::stats::CostModel;
use crate::time::{TimeDelta, Timestamp};

/// Number of reader–writer locks the per-node caches are sharded over.
/// A power of two so the stripe of a node is a mask away.
pub const CACHE_STRIPES: usize = 64;
const STRIPE_SHIFT: u32 = CACHE_STRIPES.trailing_zeros();

/// Index of a node in the tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node's children: internal nodes point at other nodes, leaves at sensors.
#[derive(Debug, Clone)]
pub enum Children {
    /// Child nodes of an internal node.
    Internal(Vec<NodeId>),
    /// Sensors homed at a leaf.
    Leaf(Vec<SensorId>),
}

/// A raw reading cached at a leaf, with the instant it was fetched (for the
/// least-recently-fetched replacement policy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedEntry {
    /// The cached reading.
    pub reading: Reading,
    /// When the portal fetched it from the sensor.
    pub fetched_at: Timestamp,
}

/// The mutable cache state of one node: its slot cache of partial aggregates
/// and (at leaves) the raw cached readings. Split out of [`Node`] so queries
/// can share the immutable tree structure while cache access goes through
/// the striped locks.
#[derive(Debug, Clone)]
pub struct NodeCache {
    /// The node's slot cache (leaf caches mirror their raw entries so parent
    /// updates are uniform).
    pub cache: SlotCache,
    /// Raw cached readings; non-empty only at leaves. Kept sorted by sensor
    /// id for O(log) lookup (leaf fanout is small).
    pub entries: Vec<CachedEntry>,
}

impl NodeCache {
    fn new(slot_config: SlotConfig) -> Self {
        NodeCache {
            cache: SlotCache::new(slot_config),
            entries: Vec::new(),
        }
    }

    fn entry_pos(&self, sensor: SensorId) -> Result<usize, usize> {
        self.entries
            .binary_search_by_key(&sensor, |e| e.reading.sensor)
    }

    /// The cached entry for `sensor`, if any.
    pub fn entry(&self, sensor: SensorId) -> Option<&CachedEntry> {
        self.entry_pos(sensor).ok().map(|i| &self.entries[i])
    }
}

/// One tree node — the immutable structural part; the node's cache lives in
/// the tree's lock-striped cache table (see [`ColrTree::with_cache`]).
#[derive(Debug, Clone)]
pub struct Node {
    /// Depth from the root (root is level 0, as in the paper).
    pub level: u16,
    /// Minimum bounding rectangle of the descendant sensors.
    pub bbox: Rect,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Children.
    pub children: Children,
    /// Number of descendant sensors — the sampling weight `w_i`.
    pub weight: u64,
    /// Descendant sensor counts per sensor type (sorted by kind). Lets
    /// type-filtered queries partition targets and check aggregate coverage
    /// against the right population.
    pub kind_weights: Vec<(u16, u64)>,
    /// Mean historical availability of descendant sensors — the `a_i` used
    /// by oversampling.
    pub avail_mean: f64,
}

impl Node {
    /// `true` when the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.children, Children::Leaf(_))
    }

    /// Number of descendant sensors of one type.
    pub fn weight_of_kind(&self, kind: u16) -> u64 {
        self.kind_weights
            .binary_search_by_key(&kind, |(k, _)| *k)
            .map(|i| self.kind_weights[i].1)
            .unwrap_or(0)
    }

    /// The sampling weight for an optionally type-filtered query.
    pub fn query_weight(&self, kind_filter: Option<u16>) -> u64 {
        match kind_filter {
            None => self.weight,
            Some(k) => self.weight_of_kind(k),
        }
    }
}

/// How the bulk loader clusters sensors (Section III-C uses k-means; STR
/// packing — the Kamel–Faloutsos style the paper cites — is provided as an
/// ablation alternative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuildStrategy {
    /// Bottom-up iterative k-means clustering (the paper's construction).
    KMeans {
        /// Lloyd iterations per clustering level.
        iterations: usize,
    },
    /// Sort-Tile-Recursive packing.
    Str,
    /// Morton (Z-order) curve packing: sort by interleaved-bit key, chunk
    /// consecutive runs. The cheap flat baseline of the bench matrix.
    Morton,
}

impl Default for BuildStrategy {
    fn default() -> Self {
        BuildStrategy::KMeans { iterations: 8 }
    }
}

/// Which in-memory representation Algorithm 1 traverses at query time.
///
/// Both layouts produce **bit-identical sample streams** for the same
/// `(tree, query, rng)` — enforced by the hot-path parity test — so the
/// choice is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotPathLayout {
    /// Traverse the pointer tree of [`Node`] structs (the reference path).
    Pointer,
    /// Traverse the flattened structure-of-arrays [`crate::arena::SamplingArena`]
    /// (cache-conscious; the default).
    Arena,
}

/// Configuration of a COLR-Tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ColrConfig {
    /// Target branching factor `B` (cluster count per level is `⌈n/B⌉`).
    pub branching: usize,
    /// Number of slots `m` in every slot cache.
    pub num_slots: usize,
    /// Tree-wide cap on cached raw readings (`None` = unconstrained). The
    /// paper varies this between 16% and 32% of the sensor population.
    pub cache_capacity: Option<usize>,
    /// Bulk-load strategy.
    pub build: BuildStrategy,
    /// When set, every slot cache also maintains per-slot value histograms
    /// with this binning, letting the portal serve group *distributions*
    /// (Section I's "distribution of waiting times") straight from cache.
    pub slot_histograms: Option<crate::agg::HistogramSpec>,
    /// Ablation switch: when `false`, layered sampling skips the
    /// availability scale-up of Algorithm 1 (targets are taken at face
    /// value, so failures directly shrink the sample).
    pub enable_oversampling: bool,
    /// Ablation switch: when `false`, Algorithm 2's redistribution is
    /// disabled (shortfalls are simply lost).
    pub enable_redistribution: bool,
    /// Fraction of a node's descendants a cached aggregate must cover before
    /// the hierarchical-cache lookup terminates early at that node
    /// (Section IV-B's "aggregate is indeed cached"). 1.0 demands full
    /// coverage; the default tolerates partially expired coverage, which is
    /// what lets the hierarchical cache cut traversals in Fig 3.
    pub cache_coverage_threshold: f64,
    /// Latency model used to convert query stats into processing latency.
    pub cost: CostModel,
    /// Query-time representation Algorithm 1 runs against.
    pub layout: HotPathLayout,
}

impl Default for ColrConfig {
    fn default() -> Self {
        ColrConfig {
            branching: 10,
            num_slots: 8,
            cache_capacity: None,
            build: BuildStrategy::default(),
            slot_histograms: None,
            enable_oversampling: true,
            enable_redistribution: true,
            cache_coverage_threshold: 0.5,
            cost: CostModel::default(),
            layout: HotPathLayout::Arena,
        }
    }
}

/// Cross-node cache bookkeeping, guarded by one mutex so that logical
/// mutations (insert + ancestor updates + eviction) are serialised while
/// readers proceed through the stripes.
#[derive(Debug, Clone, Default)]
pub(crate) struct Maintenance {
    /// Oldest slot that can still hold live readings.
    pub(crate) cache_base: u64,
    /// Total raw readings cached across all leaves.
    pub(crate) total_cached: usize,
    /// Global eviction order: `(slot_of_expiry, fetched_at, sensor)`.
    pub(crate) evict_index: BTreeSet<(u64, Timestamp, SensorId)>,
}

/// The COLR-Tree: a bulk-built R-Tree whose every node carries a slot cache,
/// plus the tree-wide raw-cache accounting.
///
/// All cache-touching operations take `&self`: reads go through the striped
/// cache locks, mutations additionally serialise on the maintenance mutex.
/// A `ColrTree` can therefore be shared across query threads directly (e.g.
/// behind an `Arc`) with no external locking.
#[derive(Debug)]
pub struct ColrTree {
    pub(crate) config: ColrConfig,
    pub(crate) slot_config: SlotConfig,
    pub(crate) t_max: TimeDelta,
    pub(crate) sensors: Vec<SensorMeta>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    /// Level of the leaves (`= height`; root is level 0).
    pub(crate) leaf_level: u16,
    /// Home leaf of each sensor.
    pub(crate) sensor_leaf: Vec<NodeId>,
    /// Per-node caches, sharded by `id % CACHE_STRIPES`; node `id` sits at
    /// position `id / CACHE_STRIPES` within its stripe.
    pub(crate) stripes: Vec<RwLock<Vec<NodeCache>>>,
    /// Serialises mutators and holds the cross-node accounting.
    pub(crate) maint: Mutex<Maintenance>,
    /// Optional live availability estimates (fault-tolerance layer).
    /// When set, Algorithm 1 consults these instead of the frozen
    /// build-time `avail_mean` / `SensorMeta::availability`.
    pub(crate) live_avail: RwLock<Option<Arc<crate::avail::LiveAvailability>>>,
    /// Flattened structure-of-arrays mirror of `nodes`, rebuilt once per
    /// generation by the bulk loader. Immutable after construction; shared
    /// by clones (it mirrors the same immutable node structure).
    pub(crate) arena: Option<Arc<crate::arena::SamplingArena>>,
}

impl Clone for ColrTree {
    fn clone(&self) -> Self {
        ColrTree {
            config: self.config.clone(),
            slot_config: self.slot_config,
            t_max: self.t_max,
            sensors: self.sensors.clone(),
            nodes: self.nodes.clone(),
            root: self.root,
            leaf_level: self.leaf_level,
            sensor_leaf: self.sensor_leaf.clone(),
            stripes: self
                .stripes
                .iter()
                .map(|s| RwLock::new(s.read().clone()))
                .collect(),
            maint: Mutex::new(self.maint.lock().clone()),
            // Estimates describe the same physical sensors, so clones share
            // the map (and keep learning from each other's probes).
            live_avail: RwLock::new(self.live_avail.read().clone()),
            arena: self.arena.clone(),
        }
    }
}

impl ColrTree {
    /// Assembles a tree from bulk-built parts, creating empty caches for
    /// every node. Levels are assigned by the caller.
    pub(crate) fn assemble(
        config: ColrConfig,
        slot_config: SlotConfig,
        t_max: TimeDelta,
        sensors: Vec<SensorMeta>,
        nodes: Vec<Node>,
        root: NodeId,
        sensor_leaf: Vec<NodeId>,
    ) -> ColrTree {
        let mut stripes: Vec<Vec<NodeCache>> = (0..CACHE_STRIPES).map(|_| Vec::new()).collect();
        for i in 0..nodes.len() {
            stripes[i & (CACHE_STRIPES - 1)].push(NodeCache::new(slot_config));
        }
        ColrTree {
            config,
            slot_config,
            t_max,
            sensors,
            nodes,
            root,
            leaf_level: 0,
            sensor_leaf,
            stripes: stripes.into_iter().map(RwLock::new).collect(),
            maint: Mutex::new(Maintenance::default()),
            live_avail: RwLock::new(None),
            arena: None,
        }
    }

    #[inline]
    fn stripe_slot(id: NodeId) -> (usize, usize) {
        (id.index() & (CACHE_STRIPES - 1), id.index() >> STRIPE_SHIFT)
    }

    // ------------------------------------------------------------------
    // Cache access
    // ------------------------------------------------------------------

    /// Runs `f` with shared access to the cache of node `id`.
    ///
    /// Holds the node's stripe read lock for the duration of `f`; do not
    /// call tree mutators (or `with_cache_mut`) from inside the closure.
    pub fn with_cache<T>(&self, id: NodeId, f: impl FnOnce(&NodeCache) -> T) -> T {
        let (stripe, pos) = Self::stripe_slot(id);
        let guard = match self.stripes[stripe].try_read() {
            Some(g) => g,
            None => {
                crate::telem::tree().stripe_read_contention.inc();
                self.stripes[stripe].read()
            }
        };
        f(&guard[pos])
    }

    /// Runs `f` with exclusive access to the cache of node `id`.
    ///
    /// Holds the node's stripe write lock for the duration of `f`; same
    /// re-entrancy rule as [`ColrTree::with_cache`].
    pub fn with_cache_mut<T>(&self, id: NodeId, f: impl FnOnce(&mut NodeCache) -> T) -> T {
        let (stripe, pos) = Self::stripe_slot(id);
        let mut guard = match self.stripes[stripe].try_write() {
            Some(g) => g,
            None => {
                crate::telem::tree().stripe_write_contention.inc();
                self.stripes[stripe].write()
            }
        };
        f(&mut guard[pos])
    }

    /// A point-in-time copy of the cache of node `id` (for inspection and
    /// tests; queries use [`ColrTree::with_cache`] to avoid the copy).
    pub fn cache_snapshot(&self, id: NodeId) -> NodeCache {
        self.with_cache(id, |c| c.clone())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tree configuration.
    pub fn config(&self) -> &ColrConfig {
        &self.config
    }

    /// The slot-cache configuration shared by every node.
    pub fn slot_config(&self) -> &SlotConfig {
        &self.slot_config
    }

    /// The maximum sensor expiry (`t_max`), which the slot window covers.
    pub fn t_max(&self) -> TimeDelta {
        self.t_max
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Level of the leaves (tree height; root is level 0).
    pub fn leaf_level(&self) -> u16 {
        self.leaf_level
    }

    /// All registered sensors, indexed by [`SensorId`].
    pub fn sensors(&self) -> &[SensorMeta] {
        &self.sensors
    }

    /// Metadata of one sensor.
    pub fn sensor(&self, id: SensorId) -> &SensorMeta {
        &self.sensors[id.index()]
    }

    /// The leaf a sensor is homed at.
    pub fn home_leaf(&self, id: SensorId) -> NodeId {
        self.sensor_leaf[id.index()]
    }

    /// Number of raw readings currently cached tree-wide.
    pub fn cached_readings(&self) -> usize {
        self.maint.lock().total_cached
    }

    /// The flattened structure-of-arrays mirror of the node structure, built
    /// once per generation by the bulk loader (`None` only for hand-assembled
    /// trees that never went through `build`).
    pub fn sampling_arena(&self) -> Option<&crate::arena::SamplingArena> {
        self.arena.as_deref()
    }

    // ------------------------------------------------------------------
    // Live availability (fault-tolerance layer)
    // ------------------------------------------------------------------

    /// Switches Algorithm 1 from the frozen build-time availability means
    /// to a live EWMA map seeded from them, and returns the map so a probe
    /// layer (e.g. `ResilientProber::attach_availability`) can feed it.
    /// Idempotent: a second call returns the existing map. `rebuild`
    /// discards the map (the node arena it indexes is gone) — re-enable
    /// and re-attach after rebuilding.
    pub fn enable_live_availability(&self, alpha: f64) -> Arc<crate::avail::LiveAvailability> {
        let mut slot = self.live_avail.write();
        if let Some(live) = &*slot {
            return live.clone();
        }
        let live = Arc::new(crate::avail::LiveAvailability::from_tree(self, alpha));
        *slot = Some(live.clone());
        live
    }

    /// The live availability map, when enabled.
    pub fn live_availability(&self) -> Option<Arc<crate::avail::LiveAvailability>> {
        self.live_avail.read().clone()
    }

    /// Reverts Algorithm 1 to the frozen build-time availability means.
    pub fn disable_live_availability(&self) {
        *self.live_avail.write() = None;
    }

    /// Mean availability of the subtree under `id`: live estimate when
    /// enabled, frozen `avail_mean` otherwise.
    pub fn node_avail(&self, id: NodeId) -> f64 {
        match &*self.live_avail.read() {
            Some(live) => live.node(id),
            None => self.node(id).avail_mean,
        }
    }

    /// Availability of one sensor: live estimate when enabled, static
    /// registration metadata otherwise.
    pub fn sensor_avail(&self, id: SensorId) -> f64 {
        match &*self.live_avail.read() {
            Some(live) => live.sensor(id),
            None => self.sensor(id).availability,
        }
    }

    /// The ancestor of `id` at `level` (or `id` itself when already at or
    /// above that level).
    pub fn ancestor_at_level(&self, id: NodeId, level: u16) -> NodeId {
        let mut cur = id;
        while self.node(cur).level > level {
            match self.node(cur).parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        cur
    }

    /// Iterates over node ids in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    // ------------------------------------------------------------------
    // Window maintenance (the roll trigger)
    // ------------------------------------------------------------------

    /// Slides the slot window forward to cover `now`, expiring whole slots at
    /// every node and expunging the raw readings they covered (Section VI-B's
    /// roll trigger). Idempotent; called by every public operation.
    pub fn advance(&self, now: Timestamp) {
        let mut maint = self.maint.lock();
        self.advance_locked(&mut maint, now);
    }

    fn advance_locked(&self, maint: &mut Maintenance, now: Timestamp) {
        let new_base = self.slot_config.base_at(now);
        if new_base <= maint.cache_base {
            return;
        }
        let telem = crate::telem::tree();
        telem.slots_rolled.add(new_base - maint.cache_base);
        // Expunge raw readings living in slots that slid out.
        while let Some(&key @ (slot, _, sensor)) = maint.evict_index.iter().next() {
            if slot >= new_base {
                break;
            }
            maint.evict_index.remove(&key);
            let leaf = self.sensor_leaf[sensor.index()];
            let removed = self.with_cache_mut(leaf, |c| match c.entry_pos(sensor) {
                Ok(pos) => {
                    c.entries.remove(pos);
                    true
                }
                Err(_) => false,
            });
            if removed {
                maint.total_cached -= 1;
                telem.readings_expunged.inc();
            }
        }
        // Drop the expired aggregate slots everywhere.
        for stripe in &self.stripes {
            let mut guard = stripe.write();
            for cache in guard.iter_mut() {
                cache.cache.roll_to(new_base);
            }
        }
        maint.cache_base = new_base;
        telem.cached_readings.set(maint.total_cached as i64);
    }

    // ------------------------------------------------------------------
    // Reading insertion / update (slot insert + update triggers)
    // ------------------------------------------------------------------

    /// Caches a freshly collected reading, updating the leaf raw cache and
    /// every ancestor's slot aggregate, then enforces the cache capacity.
    ///
    /// Returns `true` when the reading was cached (expired readings and
    /// readings beyond the window are dropped).
    pub fn insert_reading(&self, reading: Reading, now: Timestamp) -> bool {
        let mut maint = self.maint.lock();
        let entry = CachedEntry {
            reading,
            fetched_at: now,
        };
        self.insert_entries_locked(&mut maint, &[entry], now) == 1
    }

    /// Batch insertion with *per-node atomicity*: every removal and
    /// insertion the batch performs on one node's cache happens under a
    /// single stripe-lock hold, so a concurrent reader sees either none or
    /// all of the batch's effect on that node. This is what keeps the
    /// coverage-gated cache lookup sound under concurrency — a reader must
    /// never observe a half-applied write-back whose partial count passes
    /// the coverage threshold and gets served as a torn aggregate.
    ///
    /// A sensor repeated within the batch splits it into duplicate-free
    /// runs applied in order, preserving sequential last-write-wins
    /// semantics. Returns how many entries were cached.
    fn insert_entries_locked(
        &self,
        maint: &mut Maintenance,
        entries: &[CachedEntry],
        now: Timestamp,
    ) -> usize {
        let mut inserted = 0;
        let mut run: Vec<CachedEntry> = Vec::with_capacity(entries.len());
        let mut seen: BTreeSet<SensorId> = BTreeSet::new();
        for e in entries {
            if !seen.insert(e.reading.sensor) {
                inserted += self.apply_run_locked(maint, &run, now);
                run.clear();
                seen.clear();
                seen.insert(e.reading.sensor);
            }
            run.push(*e);
        }
        inserted += self.apply_run_locked(maint, &run, now);
        inserted
    }

    /// Applies one duplicate-free run of entries (see
    /// [`ColrTree::insert_entries_locked`]): validates, swaps raw leaf
    /// entries grouped per leaf, then applies each node's slot-aggregate
    /// deltas bottom-up — one critical section per touched node, removal of
    /// a replaced reading and insertion of its successor inside the same
    /// hold.
    fn apply_run_locked(
        &self,
        maint: &mut Maintenance,
        run: &[CachedEntry],
        now: Timestamp,
    ) -> usize {
        struct Planned {
            entry: CachedEntry,
            old: Option<CachedEntry>,
        }
        enum AggOp {
            Remove { expires_at: Timestamp, value: f64 },
            Insert(Reading),
        }
        struct NodeOps {
            id: NodeId,
            level: u16,
            ops: Vec<(AggOp, u16)>,
        }
        if run.is_empty() {
            return 0;
        }
        self.advance_locked(maint, now);
        let window_top = maint.cache_base + self.config.num_slots as u64 + 1;
        let mut plans: Vec<Planned> = Vec::with_capacity(run.len());
        for &entry in run {
            let reading = entry.reading;
            if reading.sensor.index() >= self.sensors.len() {
                continue; // unknown sensor (population changed under carry-over)
            }
            let slot = self.slot_config.slot_of(reading.expires_at);
            if slot < maint.cache_base || slot >= window_top || !reading.is_live(now) {
                continue;
            }
            let leaf = self.sensor_leaf[reading.sensor.index()];
            let old = self.with_cache(leaf, |c| c.entry(reading.sensor).copied());
            plans.push(Planned { entry, old });
        }
        if plans.is_empty() {
            return 0;
        }

        // Raw leaf entries: replace-and-insert per leaf in one hold.
        let mut by_leaf: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for (i, p) in plans.iter().enumerate() {
            let leaf = self.sensor_leaf[p.entry.reading.sensor.index()];
            match by_leaf.iter_mut().find(|(id, _)| *id == leaf) {
                Some((_, idxs)) => idxs.push(i),
                None => by_leaf.push((leaf, vec![i])),
            }
        }
        for (leaf, idxs) in &by_leaf {
            self.with_cache_mut(*leaf, |c| {
                for &i in idxs {
                    let p = &plans[i];
                    let sensor = p.entry.reading.sensor;
                    if let Ok(pos) = c.entry_pos(sensor) {
                        c.entries.remove(pos);
                    }
                    match c.entry_pos(sensor) {
                        Ok(_) => unreachable!("entry was just removed"),
                        Err(pos) => c.entries.insert(pos, p.entry),
                    }
                }
            });
        }
        let telem = crate::telem::tree();
        for p in &plans {
            if let Some(old) = &p.old {
                maint.total_cached -= 1;
                let old_slot = self.slot_config.slot_of(old.reading.expires_at);
                maint
                    .evict_index
                    .remove(&(old_slot, old.fetched_at, old.reading.sensor));
            }
            let slot = self.slot_config.slot_of(p.entry.reading.expires_at);
            maint.total_cached += 1;
            maint
                .evict_index
                .insert((slot, p.entry.fetched_at, p.entry.reading.sensor));
            telem.cache_inserts.inc();
        }
        telem.cached_readings.set(maint.total_cached as i64);

        // Slot aggregates: group each root-ward chain's deltas per node
        // (arrival order within a node), then apply bottom-up.
        let base = maint.cache_base;
        let mut node_ops: Vec<NodeOps> = Vec::new();
        for p in &plans {
            let reading = p.entry.reading;
            let kind = self.sensors[reading.sensor.index()].kind;
            let mut cur = Some(self.sensor_leaf[reading.sensor.index()]);
            while let Some(id) = cur {
                let node = self.node(id);
                let ops = match node_ops.iter_mut().find(|n| n.id == id) {
                    Some(n) => &mut n.ops,
                    None => {
                        node_ops.push(NodeOps {
                            id,
                            level: node.level,
                            ops: Vec::new(),
                        });
                        &mut node_ops.last_mut().expect("just pushed").ops
                    }
                };
                if let Some(old) = &p.old {
                    ops.push((
                        AggOp::Remove {
                            expires_at: old.reading.expires_at,
                            value: old.reading.value,
                        },
                        kind,
                    ));
                }
                ops.push((AggOp::Insert(reading), kind));
                cur = node.parent;
            }
        }
        node_ops.sort_by(|a, b| b.level.cmp(&a.level).then(a.id.cmp(&b.id)));
        let mut rebuilds: Vec<(NodeId, u64)> = Vec::new();
        for NodeOps { id, ops, .. } in &node_ops {
            let mut needs: Vec<u64> = Vec::new();
            self.with_cache_mut(*id, |c| {
                for (op, kind) in ops {
                    match op {
                        AggOp::Remove { expires_at, value } => {
                            match c.cache.try_remove_kind(*expires_at, *value, *kind) {
                                RemoveOutcome::Removed | RemoveOutcome::Absent => {}
                                RemoveOutcome::NeedsRebuild => {
                                    needs.push(self.slot_config.slot_of(*expires_at));
                                }
                            }
                        }
                        AggOp::Insert(r) => {
                            c.cache
                                .insert_kind(r.expires_at, r.timestamp, r.value, *kind, base);
                        }
                    }
                }
            });
            for slot in needs {
                telem.slot_rebuilds.inc();
                if !rebuilds.contains(&(*id, slot)) {
                    rebuilds.push((*id, slot));
                }
            }
        }
        // Rebuilt slots are recomputed from the (already final) level below,
        // outside the node's own critical section — the transient window is
        // a slot that over-counts one replaced reading, never a torn fill.
        for (id, slot) in rebuilds {
            self.rebuild_slot(id, slot);
        }

        self.enforce_capacity_locked(maint);
        plans.len()
    }

    /// Applies a batch of probe results in order — the deferred write-back
    /// of a *frozen* execution (see [`ColrTree::execute_frozen`]) and the
    /// immediate write-back of interactive queries both land here. One
    /// maintenance acquisition covers the whole batch, and each touched
    /// node cache is updated in a single critical section, so concurrent
    /// readers never observe a half-applied write-back. Returns how many
    /// readings were cached.
    pub fn apply_readings(&self, readings: &[Reading], now: Timestamp) -> usize {
        let mut maint = self.maint.lock();
        let entries: Vec<CachedEntry> = readings
            .iter()
            .map(|&reading| CachedEntry {
                reading,
                fetched_at: now,
            })
            .collect();
        let applied = self.insert_entries_locked(&mut maint, &entries, now);
        if applied > 0 {
            colr_telemetry::tracer().record_now(
                colr_telemetry::SpanKind::WriteBack,
                0,
                applied as u64,
            );
        }
        applied
    }

    /// Every raw cached reading with its original fetch instant, in global
    /// eviction order (oldest expiry slot first). This is the payload an
    /// online reindex carries from a retiring index generation into its
    /// replacement ([`ColrTree::restore_entries`]); slot alignment is global,
    /// so the entries land in the same absolute expiry slots on the other
    /// side.
    pub fn cached_entries(&self) -> Vec<CachedEntry> {
        let maint = self.maint.lock();
        maint
            .evict_index
            .iter()
            .filter_map(|&(_, _, sensor)| {
                let leaf = self.sensor_leaf[sensor.index()];
                self.with_cache(leaf, |c| c.entry(sensor).copied())
            })
            .collect()
    }

    /// Re-caches entries exported by [`ColrTree::cached_entries`] from
    /// another tree over the same (or a grown) sensor population, preserving
    /// each entry's `fetched_at` so the least-recently-fetched eviction order
    /// is unchanged by the transfer. Expired entries, entries outside the
    /// slot window at `now`, and entries for unknown sensors are skipped.
    /// Returns how many entries were restored.
    pub fn restore_entries(&self, entries: &[CachedEntry], now: Timestamp) -> usize {
        let mut maint = self.maint.lock();
        self.insert_entries_locked(&mut maint, entries, now)
    }

    /// Removes the cached reading of `sensor` (if any) from the leaf and all
    /// ancestor aggregates. Used for updates and evictions.
    pub fn remove_cached(&self, sensor: SensorId) -> Option<Reading> {
        let mut maint = self.maint.lock();
        self.remove_cached_locked(&mut maint, sensor)
    }

    fn remove_cached_locked(&self, maint: &mut Maintenance, sensor: SensorId) -> Option<Reading> {
        let leaf = self.sensor_leaf[sensor.index()];
        let entry = self.with_cache_mut(leaf, |c| {
            c.entry_pos(sensor).ok().map(|pos| c.entries.remove(pos))
        })?;
        maint.total_cached -= 1;
        crate::telem::tree()
            .cached_readings
            .set(maint.total_cached as i64);
        let slot = self.slot_config.slot_of(entry.reading.expires_at);
        maint.evict_index.remove(&(slot, entry.fetched_at, sensor));

        // Decrement bottom-up; rebuild any slot that cannot be decremented.
        let kind = self.sensors[sensor.index()].kind;
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            let outcome = self.with_cache_mut(id, |c| {
                c.cache
                    .try_remove_kind(entry.reading.expires_at, entry.reading.value, kind)
            });
            match outcome {
                RemoveOutcome::Removed | RemoveOutcome::Absent => {}
                RemoveOutcome::NeedsRebuild => {
                    crate::telem::tree().slot_rebuilds.inc();
                    self.rebuild_slot(id, slot);
                }
            }
            cur = self.node(id).parent;
        }
        Some(entry.reading)
    }

    /// Recomputes one slot of one node from the level below (leaf: from raw
    /// entries; internal: from the children's same slot) — the fallback for
    /// non-decrementable aggregates. Child caches are read one at a time
    /// before the node's own stripe is locked, so at most one stripe lock is
    /// ever held.
    fn rebuild_slot(&self, id: NodeId, slot: u64) {
        fn merge_kind(
            by_kind: &mut Vec<(u16, crate::agg::PartialAgg)>,
            kind: u16,
            add: &crate::agg::PartialAgg,
        ) {
            match by_kind.binary_search_by_key(&kind, |(k, _)| *k) {
                Ok(i) => by_kind[i].1.merge(add),
                Err(i) => by_kind.insert(i, (kind, *add)),
            }
        }
        let hist_spec = self.slot_config.histogram;
        let mut agg = crate::agg::PartialAgg::empty();
        let mut min_ts = Timestamp(u64::MAX);
        let mut by_kind: Vec<(u16, crate::agg::PartialAgg)> = Vec::new();
        let mut hist = hist_spec.map(|spec| spec.empty());
        match &self.nodes[id.index()].children {
            Children::Leaf(_) => {
                self.with_cache(id, |c| {
                    for e in &c.entries {
                        if self.slot_config.slot_of(e.reading.expires_at) == slot {
                            agg.insert(e.reading.value);
                            min_ts = min_ts.min(e.reading.timestamp);
                            let kind = self.sensors[e.reading.sensor.index()].kind;
                            merge_kind(
                                &mut by_kind,
                                kind,
                                &crate::agg::PartialAgg::from_value(e.reading.value),
                            );
                            if let Some(h) = &mut hist {
                                h.insert(e.reading.value);
                            }
                        }
                    }
                });
            }
            Children::Internal(children) => {
                for &ch in children {
                    let child_slot = self.with_cache(ch, |c| c.cache.slot(slot).cloned());
                    if let Some(s) = child_slot {
                        agg.merge(&s.agg);
                        min_ts = min_ts.min(s.min_ts);
                        for (k, a) in &s.by_kind {
                            merge_kind(&mut by_kind, *k, a);
                        }
                        if let (Some(h), Some(sh)) = (&mut hist, &s.hist) {
                            h.merge(sh);
                        }
                    }
                }
            }
        }
        let rebuilt = Slot {
            agg,
            min_ts,
            by_kind,
            hist,
        };
        self.with_cache_mut(id, |c| c.cache.set_slot(slot, rebuilt));
    }

    /// Enforces the tree-wide raw-cache capacity by evicting least recently
    /// fetched readings from the oldest slot (Section IV-A's policy).
    fn enforce_capacity_locked(&self, maint: &mut Maintenance) {
        let Some(cap) = self.config.cache_capacity else {
            return;
        };
        while maint.total_cached > cap {
            let Some(&(_, _, sensor)) = maint.evict_index.iter().next() else {
                break;
            };
            if self.remove_cached_locked(maint, sensor).is_some() {
                crate::telem::tree().evictions.inc();
            }
        }
    }

    // ------------------------------------------------------------------
    // Subtree walks used by lookup & sampling
    // ------------------------------------------------------------------

    /// Collects every sensor under `id` whose location lies within `region`.
    pub fn sensors_in_region(&self, id: NodeId, region: &Region) -> Vec<SensorId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let node = self.node(cur);
            if !region.intersects_rect(&node.bbox) {
                continue;
            }
            match &node.children {
                Children::Leaf(sensors) => {
                    for &s in sensors {
                        if region.contains_point(&self.sensors[s.index()].location) {
                            out.push(s);
                        }
                    }
                }
                Children::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
        out
    }

    /// Collects the fresh cached readings under `id` within `region` at
    /// `now` with freshness bound `staleness`.
    pub fn fresh_cached_readings(
        &self,
        id: NodeId,
        region: &Region,
        now: Timestamp,
        staleness: TimeDelta,
    ) -> Vec<Reading> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let node = self.node(cur);
            if !region.intersects_rect(&node.bbox) {
                continue;
            }
            match &node.children {
                Children::Leaf(_) => {
                    self.with_cache(cur, |c| {
                        for e in &c.entries {
                            if e.reading.is_fresh(now, staleness)
                                && region.contains_point(
                                    &self.sensors[e.reading.sensor.index()].location,
                                )
                            {
                                out.push(e.reading);
                            }
                        }
                    });
                }
                Children::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
        out
    }

    /// Location of a sensor.
    pub fn sensor_location(&self, id: SensorId) -> Point {
        self.sensors[id.index()].location
    }

    /// Clears every cache in the tree (used between experiment phases).
    pub fn clear_caches(&self) {
        let mut maint = self.maint.lock();
        for stripe in &self.stripes {
            let mut guard = stripe.write();
            for cache in guard.iter_mut() {
                cache.cache.clear();
                cache.entries.clear();
            }
        }
        maint.evict_index.clear();
        maint.total_cached = 0;
        crate::telem::tree().cached_readings.set(0);
    }

    /// Debug validation: checks the structural invariants of the tree and
    /// cache accounting. Used by tests; O(n).
    pub fn validate(&self) -> Result<(), String> {
        let maint = self.maint.lock();
        // Parent bbox contains child bboxes; weights add up.
        for id in self.node_ids() {
            let node = self.node(id);
            match &node.children {
                Children::Internal(children) => {
                    if children.is_empty() {
                        return Err(format!("internal node {id:?} has no children"));
                    }
                    let mut w = 0;
                    for &c in children {
                        let child = self.node(c);
                        if child.parent != Some(id) {
                            return Err(format!("child {c:?} has wrong parent"));
                        }
                        if child.level != node.level + 1 {
                            return Err(format!("child {c:?} has wrong level"));
                        }
                        if !node.bbox.contains_rect(&child.bbox) {
                            return Err(format!("bbox of {id:?} does not contain child {c:?}"));
                        }
                        w += child.weight;
                    }
                    if w != node.weight {
                        return Err(format!(
                            "weight mismatch at {id:?}: {} vs sum {}",
                            node.weight, w
                        ));
                    }
                }
                Children::Leaf(sensors) => {
                    if node.level != self.leaf_level {
                        return Err(format!("leaf {id:?} not at leaf level"));
                    }
                    if node.weight != sensors.len() as u64 {
                        return Err(format!("leaf {id:?} weight mismatch"));
                    }
                    for &s in sensors {
                        if self.sensor_leaf[s.index()] != id {
                            return Err(format!("sensor {s:?} home-leaf mismatch"));
                        }
                        if !node.bbox.contains_point(&self.sensors[s.index()].location) {
                            return Err(format!("sensor {s:?} outside leaf bbox"));
                        }
                    }
                }
            }
        }
        // Cache accounting.
        let counted: usize = self
            .stripes
            .iter()
            .map(|s| s.read().iter().map(|c| c.entries.len()).sum::<usize>())
            .sum();
        if counted != maint.total_cached {
            return Err(format!(
                "total_cached {} != actual {}",
                maint.total_cached, counted
            ));
        }
        if maint.evict_index.len() != maint.total_cached {
            return Err(format!(
                "evict index size {} != cached {}",
                maint.evict_index.len(),
                maint.total_cached
            ));
        }
        if let Some(cap) = self.config.cache_capacity {
            if maint.total_cached > cap {
                return Err(format!(
                    "cache over capacity: {} > {cap}",
                    maint.total_cached
                ));
            }
        }
        Ok(())
    }
}
