//! Fault-injection smoke: a resilient portal rides out a regional outage
//! plus fleet-wide availability drift, and reports the degradation.
//!
//! Exercises the full fault-tolerance stack — `FaultPlan` on the simulated
//! network, `ResilientProber` retries and circuit breakers, the live
//! availability EWMA feeding Algorithm 1, and the portal's
//! `DegradationReport` — then self-checks the invariants CI cares about.
//! Prints `fault_smoke OK` on success (ci.sh greps for it).
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use colr_repro::colr::{Mode, ResilientConfig, ResilientProber, TimeDelta, Timestamp};
use colr_repro::engine::{Portal, PortalConfig};
use colr_repro::sensors::{ConstantField, SimNetwork};
use colr_repro::workload::ScenarioConfig;

fn main() {
    // A small clustered Live-Local-like deployment with one query hotspot.
    let mut cfg = ScenarioConfig::live_local_small();
    cfg.sensor_count = 3_000;
    cfg.queries.count = 0;
    cfg.availability = (0.9, 1.0);
    let scenario = cfg.build();

    // Stress plan: ~25% of the fleet hard-down from t=60s, availability
    // drifting to 0.8, a mid-window latency spike, one flapping sensor.
    let plan = scenario.mixed_faults(0.25, 0.8, Timestamp(60_000), Timestamp(30 * 60 * 1_000));
    let net = SimNetwork::new(
        scenario.sensors.clone(),
        ConstantField {
            base: 1.0,
            step: 0.0,
        },
        17,
    );
    net.set_fault_plan(plan);

    let prober = ResilientProber::new(
        net,
        ResilientConfig {
            max_retries: 1,
            breaker_threshold: 3,
            breaker_cooldown: TimeDelta::from_mins(20),
            ..Default::default()
        },
    );
    let mut portal = Portal::new(
        scenario.sensors.clone(),
        prober,
        PortalConfig {
            mode: Mode::Colr,
            ..Default::default()
        },
    );
    let live = portal.enable_resilience_feedback(0.3);

    let extent = scenario.extent;
    let sql = format!(
        "SELECT avg(value) FROM sensor WHERE location WITHIN \
         RECT({}, {}, {}, {}) SAMPLESIZE 150",
        extent.min.x, extent.min.y, extent.max.x, extent.max.y
    );

    let mut total_retries = 0u64;
    let mut total_skipped = 0u64;
    let mut last_fulfillment = 0.0;
    for i in 0..30 {
        portal.clock().advance(TimeDelta::from_mins(3));
        let res = portal.query_sql(&sql).expect("smoke query runs");
        total_retries += res.degradation.probes_retried;
        total_skipped += res.degradation.breaker_skipped;
        last_fulfillment = res.degradation.fulfillment();
        if i % 6 == 0 {
            println!(
                "fault_smoke t={}min sampled={}/{} fulfillment={:.2} \
                 retried={} breaker_skipped={} open_breakers={}",
                portal.now().0 / 60_000,
                res.degradation.sampled,
                res.degradation.requested,
                res.degradation.fulfillment(),
                res.degradation.probes_retried,
                res.degradation.breaker_skipped,
                portal.probe().open_breakers(),
            );
        }
    }
    // Batch path: the same viewport plus four sub-quadrants in one
    // `query_many_sql`, whose BatchResult merges per-query degradation and
    // surfaces the single worst-served query.
    let (cx, cy) = (
        (extent.min.x + extent.max.x) / 2.0,
        (extent.min.y + extent.max.y) / 2.0,
    );
    let quadrants = [
        (extent.min.x, extent.min.y, cx, cy),
        (cx, extent.min.y, extent.max.x, cy),
        (extent.min.x, cy, cx, extent.max.y),
        (cx, cy, extent.max.x, extent.max.y),
    ];
    let mut batch_sql: Vec<String> = quadrants
        .iter()
        .map(|(x0, y0, x1, y1)| {
            format!(
                "SELECT avg(value) FROM sensor WHERE location WITHIN \
                 RECT({x0}, {y0}, {x1}, {y1}) SAMPLESIZE 60"
            )
        })
        .collect();
    batch_sql.push(sql.clone());
    let refs: Vec<&str> = batch_sql.iter().map(String::as_str).collect();
    portal.clock().advance(TimeDelta::from_mins(3));
    let batch = portal.query_many_sql(&refs, 4).expect("batch parses");
    println!(
        "fault_smoke batch: queries={} sampled={}/{} merged_fulfillment={:.2} \
         worst_fulfillment={:.2} retried={} breaker_skipped={}",
        batch.results.len(),
        batch.degradation.sampled,
        batch.degradation.requested,
        batch.degradation.fulfillment(),
        batch.worst_fulfillment(),
        batch.degradation.probes_retried,
        batch.degradation.breaker_skipped,
    );
    // The merged report is a fleet-weighted mean, so the worst single query
    // can never beat it; and under a standing 25% outage the worst viewport
    // must still be served at a usable level.
    assert!(
        batch.worst_fulfillment() <= batch.degradation.fulfillment() + 1e-9,
        "worst query outperformed the merged mean"
    );
    assert!(
        batch.worst_fulfillment() > 0.3,
        "worst batch query collapsed: {}",
        batch.worst_fulfillment()
    );
    assert_eq!(
        batch.degradation.requested,
        batch.results.iter().map(|r| r.degradation.requested).sum(),
        "merged report lost a query's probes"
    );

    let truth = portal.probe().inner().true_availabilities(portal.now());
    let gap = live.mean_abs_gap(&truth);
    println!(
        "fault_smoke final: open_breakers={} retries={} skipped={} ewma_gap={:.3}",
        portal.probe().open_breakers(),
        total_retries,
        total_skipped,
        gap
    );

    // Self-checks: the fault machinery actually engaged and the estimator
    // tracks the injected reality.
    assert!(total_retries > 0, "no retries under injected faults");
    assert!(
        total_skipped > 0,
        "breakers never skipped a dead sensor under a 25% outage"
    );
    assert!(
        portal.probe().open_breakers() > 0,
        "no breakers open despite a standing outage"
    );
    assert!(
        gap < 0.25,
        "live estimator gap {gap} too far from injected truth"
    );
    assert!(
        last_fulfillment > 0.5,
        "fulfillment collapsed: {last_fulfillment}"
    );
    println!("fault_smoke OK");
}
