//! colr-stats: drive a portal scenario, then dump everything the telemetry
//! layer observed — Prometheus exposition, the query-lifecycle trace, and
//! the tree's structural level statistics.
//!
//! ```sh
//! cargo run --example colr-stats
//! ```
//!
//! Used by `ci.sh` as the observability smoke test: the run must emit the
//! metric families the instrumentation promises.

use std::sync::Arc;

use colr_repro::colr::{inspect, Mode, SensorMeta, TimeDelta};
use colr_repro::engine::{Portal, PortalConfig};
use colr_repro::geo::Point;
use colr_repro::sensors::{RandomWalkField, SimNetwork};
use colr_repro::telemetry::{global, tracer, SloConfig, SloWatchdog};

fn main() {
    // A 32x32 grid of 5-minute sensors at 90% availability over a drifting
    // value field — small enough to run in well under a second, busy enough
    // to touch every instrumented path.
    let sensors: Vec<SensorMeta> = (0..1024)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new((i % 32) as f64, (i / 32) as f64),
                TimeDelta::from_mins(5),
                0.9,
            )
        })
        .collect();
    let net = SimNetwork::new(
        sensors.clone(),
        RandomWalkField::new(1024, 20.0, 60.0, 1.5, 9),
        7,
    );
    // Hierarchical-cache mode exercises the per-level aggregate hit/miss
    // counters on the warm pass; the probe-side metrics fire on the cold one.
    let mut portal = Portal::new(
        sensors,
        net,
        PortalConfig {
            mode: Mode::HierCache,
            ..Default::default()
        },
    );

    // An SLO watchdog rides along for the whole scenario; the objectives
    // are generous, so this run reports a clean status rather than breaches.
    let watchdog = Arc::new(SloWatchdog::new(SloConfig {
        window: 64,
        min_samples: 8,
        p99_latency_us: Some(30_000_000),
        min_fulfillment: Some(0.5),
        keep_flight_records: 4,
        cooldown: 16,
    }));
    portal.attach_watchdog(watchdog.clone());

    // Cold viewport queries, then the same viewports warm, then a batch.
    portal.clock().advance(TimeDelta::from_secs(1));
    let sqls: Vec<String> = (0..8)
        .map(|i| {
            let x0 = (i % 4) as f64 * 8.0 - 0.5;
            let y0 = (i / 4) as f64 * 16.0 - 0.5;
            format!(
                "SELECT avg(value) FROM sensor WHERE location WITHIN \
                 RECT({x0}, {y0}, {}, {}) SAMPLESIZE 40",
                x0 + 8.0,
                y0 + 16.0
            )
        })
        .collect();
    for sql in &sqls {
        portal.query_sql(sql).expect("cold query");
    }
    portal.clock().advance(TimeDelta::from_secs(5));
    for sql in &sqls {
        portal.query_sql(sql).expect("warm query");
    }
    portal.clock().advance(TimeDelta::from_secs(5));
    let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
    let batch = portal.query_many_sql(&refs, 4).expect("batch");
    println!(
        "ran {} interactive + {} batched queries; batch applied {} readings\n",
        2 * sqls.len(),
        batch.results.len(),
        batch.readings_applied
    );

    // 1. The metrics registry, in Prometheus text exposition format.
    println!("== Prometheus exposition ==");
    print!("{}", global().snapshot().to_prometheus());

    // 2. The query-lifecycle trace (bounded rings; batch workers get their
    //    own rings, merged here in global record order).
    let events = tracer().drain();
    println!("\n== Trace ({} events, last 12) ==", events.len());
    println!(
        "{:>10} {:>12} {:>10} {:>8}  kind",
        "seq", "at_us", "dur_us", "detail"
    );
    for e in events.iter().rev().take(12).rev() {
        println!(
            "{:>10} {:>12} {:>10} {:>8}  {}",
            e.seq,
            e.at_us,
            e.dur_us,
            e.detail,
            e.kind.name()
        );
    }

    // 3. One query under `EXPLAIN ANALYZE`: the per-query flight recorder's
    //    stage tree, with the parity assertion against `QueryStats`.
    println!("\n== EXPLAIN ANALYZE ==");
    let report = portal
        .explain_analyze_sql(&format!("EXPLAIN ANALYZE {}", sqls[0]))
        .expect("explain analyze");
    println!("{report}");

    // 4. The watchdog's view of the whole run.
    println!("\n== SLO watchdog ==");
    println!("{}", watchdog.status());

    // 5. Structural level statistics of the index (Section VII-B).
    println!("\n== Tree level stats ==");
    println!(
        "{:>5} {:>6} {:>10} {:>10} {:>11} {:>9} {:>10}",
        "level", "nodes", "min_wt", "max_wt", "mean_wt", "wt_cv", "diameter"
    );
    for s in inspect::level_stats(portal.tree()) {
        println!(
            "{:>5} {:>6} {:>10} {:>10} {:>11.1} {:>9.3} {:>10.2}",
            s.level,
            s.nodes,
            s.min_weight,
            s.max_weight,
            s.mean_weight,
            s.weight_cv,
            s.mean_diameter
        );
    }
}
