//! Service-layer concurrency smoke: many client threads drive one shared
//! [`PortalService`] handle through `&self` while the main thread keeps
//! republishing the index.
//!
//! Asserts the properties CI cares about end to end: no panics under
//! contention, zero reader downtime (every query answered), no torn
//! answers (every count names exactly one generation), a monotone
//! generation counter from every thread's viewpoint, and cache carry-over
//! across each swap. A second phase injects a regional outage under an
//! SLO watchdog and asserts the fulfillment breach report carries flight
//! records. Prints `service_storm OK` on success (ci.sh greps for it).
//!
//! With `--shards N` the storm runs against a spatially sharded
//! [`ShardedPortal`] instead: clients scatter-gather through the unified
//! [`QueryRequest`] surface while the main thread registers publishers near
//! a shard boundary and republishes every shard (rebalance-on-reindex),
//! then closes one shard and asserts the outage degrades the merged answer
//! instead of failing it. Prints `service_storm sharded OK` on success.
//!
//! With `--churn` the storm runs the sensor-churn soak against an
//! incremental LSM index ([`IndexStrategy::Lsm`]): a writer thread
//! sustains thousands of register/retire ops per second while clients
//! query and a merge thread compacts L0 — asserting the churn rate clears
//! 2,000 ops/sec, no query stalls or torn answers, and L0 occupancy stays
//! bounded by the merge cadence. Prints `service_storm churn OK`.
//!
//! ```sh
//! cargo run --example service_storm
//! cargo run --example service_storm -- --shards 4
//! cargo run --example service_storm -- --churn
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use colr_repro::colr::probe::AlwaysAvailable;
use colr_repro::colr::{
    LsmConfig, Mode, ProbeService, Reading, SensorId, SensorMeta, TimeDelta, Timestamp,
};
use colr_repro::engine::{IndexStrategy, PortalConfig, PortalService, QueryRequest, ShardedPortal};
use colr_repro::geo::Point;
use colr_repro::telemetry::{SloConfig, SloWatchdog};

const SIDE: usize = 32;
const BASE: usize = SIDE * SIDE; // 1024 sensors
const EXPIRY_MS: u64 = 300_000;
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 200;
const SWAPS: usize = 4;
const NEW_PER_SWAP: usize = 8;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut shards: Option<usize> = None;
    let mut churn = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--shards" => {
                shards = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--shards N"),
                )
            }
            "--churn" => churn = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if churn {
        churn_phase();
        return;
    }
    if let Some(k) = shards {
        sharded_phase(k);
        return;
    }
    let sensors: Vec<SensorMeta> = (0..BASE)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new((i % SIDE) as f64, (i / SIDE) as f64),
                TimeDelta::from_millis(EXPIRY_MS),
                1.0,
            )
        })
        .collect();
    let svc = PortalService::new(
        sensors,
        AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        },
        PortalConfig {
            mode: Mode::HierCache, // exact counts: any torn read is visible
            ..Default::default()
        },
    );
    svc.clock().advance(TimeDelta::from_secs(1));
    let sql = format!(
        "SELECT count(*) FROM sensor WHERE location WITHIN RECT(-0.5,-0.5,{},{})",
        SIDE as f64 - 0.5,
        SIDE as f64 - 0.5
    );
    // New publishers land inside the viewport, so each generation's count
    // identifies it exactly.
    let valid: Vec<f64> = (0..=SWAPS)
        .map(|g| (BASE + g * NEW_PER_SWAP) as f64)
        .collect();

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for _ in 0..CLIENTS {
            let handle = svc.clone();
            let sql = sql.as_str();
            clients.push(scope.spawn(move || {
                let mut last_answer = 0.0f64;
                let mut last_gen = 0u64;
                for _ in 0..QUERIES_PER_CLIENT {
                    let g = handle.generation();
                    assert!(g >= last_gen, "generation regressed {last_gen} -> {g}");
                    last_gen = g;
                    let res = handle.query_sql(sql).expect("zero reader downtime");
                    let a = res.value.expect("count defined");
                    assert!(a >= last_answer, "answer regressed {last_answer} -> {a}");
                    last_answer = a;
                }
                (last_answer, last_gen)
            }));
        }

        // The forced-reindex storm, overlapping the clients.
        for swap in 0..SWAPS {
            for i in 0..NEW_PER_SWAP {
                svc.register_sensor(
                    Point::new(5.1 + i as f64 * 0.05, 5.1 + swap as f64 * 0.05),
                    TimeDelta::from_millis(EXPIRY_MS),
                    1.0,
                    0,
                );
            }
            let before = svc.snapshot().tree().cached_readings();
            svc.reindex();
            let after = svc.snapshot().tree().cached_readings();
            assert!(
                after >= before,
                "carry-over lost cached readings: {before} -> {after}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        for client in clients {
            let (answer, generation) = client.join().expect("client thread panicked");
            assert!(
                valid.contains(&answer),
                "torn answer {answer}, valid {valid:?}"
            );
            assert!(generation <= SWAPS as u64);
        }
    });

    assert_eq!(svc.generation(), SWAPS as u64, "one generation per swap");
    assert_eq!(svc.in_flight(), 0, "admission slots all released");
    let final_count = svc.query_sql(&sql).unwrap().value.unwrap();
    assert_eq!(final_count, (BASE + SWAPS * NEW_PER_SWAP) as f64);
    println!(
        "service_storm clients={CLIENTS} queries={} swaps={SWAPS} final_population={final_count}",
        CLIENTS * QUERIES_PER_CLIENT,
    );

    outage_phase();
    println!("service_storm OK");
}

/// The sharded storm (`--shards N`): clients scatter-gather through one
/// [`ShardedPortal`] via the unified [`QueryRequest`] surface while the main
/// thread registers publishers near the inter-shard boundary and
/// republishes every shard — the rebalance-on-reindex path — then injects a
/// regional outage by closing one shard and asserts the merged answer
/// degrades instead of failing.
fn sharded_phase(shards: usize) {
    const SHARD_CLIENTS: usize = 4;
    const SHARD_QUERIES: usize = 100;

    let sensors: Vec<SensorMeta> = (0..BASE)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new((i % SIDE) as f64, (i / SIDE) as f64),
                TimeDelta::from_millis(EXPIRY_MS),
                1.0,
            )
        })
        .collect();
    let router = ShardedPortal::new(
        sensors,
        |_, _| AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        },
        shards,
        PortalConfig {
            mode: Mode::Colr,
            ..Default::default()
        },
    );
    router.clock().advance(TimeDelta::from_secs(1));
    assert_eq!(router.shard_count(), shards);

    let extent = SIDE as f64 - 0.5;
    let spanning_sql = format!(
        "SELECT count(*) FROM sensor WHERE location WITHIN RECT(-0.5,-0.5,{extent},{extent}) \
         SAMPLESIZE 64"
    );
    let half = SIDE as f64 / 2.0 - 0.5;
    let mut sqls = vec![spanning_sql.clone()];
    for (x0, y0, x1, y1) in [
        (-0.5, -0.5, half, half),
        (half, -0.5, extent, half),
        (-0.5, half, half, extent),
        (half, half, extent, extent),
    ] {
        sqls.push(format!(
            "SELECT count(*) FROM sensor WHERE location WITHIN RECT({x0},{y0},{x1},{y1}) \
             SAMPLESIZE 16"
        ));
    }
    let reqs: Vec<QueryRequest> = sqls
        .iter()
        .map(|sql| QueryRequest::from_sql(sql).expect("storm SQL parses"))
        .collect();

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..SHARD_CLIENTS {
            let handle = router.clone();
            let reqs = &reqs;
            clients.push(scope.spawn(move || {
                for i in 0..SHARD_QUERIES {
                    let resp = handle
                        .execute(&reqs[(c + i) % reqs.len()])
                        .expect("zero reader downtime through the router");
                    assert!(!resp.shards.is_empty(), "no fan-out outcome recorded");
                    assert!(
                        resp.shards.iter().all(|o| o.error.is_none()),
                        "healthy fleet reported a shard error"
                    );
                }
            }));
        }

        // Registrations near the boundary between the first and last shard's
        // territories, republishing every shard each swap — exactly the path
        // rebalance-on-reindex arbitrates.
        let map = router.shard_map();
        let (a, b) = (map[0].centroid, map[map.len() - 1].centroid);
        let mid = Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
        for swap in 0..SWAPS {
            for i in 0..NEW_PER_SWAP {
                router.register_sensor(
                    Point::new(mid.x + i as f64 * 0.05, mid.y + swap as f64 * 0.05),
                    TimeDelta::from_millis(EXPIRY_MS),
                    1.0,
                    0,
                );
            }
            router.reindex_all();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for client in clients {
            client.join().expect("sharded client panicked");
        }
    });

    assert_eq!(
        router.pending_registrations(),
        0,
        "boundary registrations drained at reindex"
    );
    let population: usize = router.shard_map().iter().map(|s| s.sensors).sum();
    assert_eq!(
        population,
        BASE + SWAPS * NEW_PER_SWAP,
        "every registration landed in exactly one shard"
    );

    // Regional outage: one dead shard degrades the merged answer (and is
    // named in the fan-out outcomes) instead of failing the query.
    if shards > 1 {
        let dead = shards - 1;
        router.shard(dead).close();
        let resp = router
            .execute(&QueryRequest::from_sql(&spanning_sql).expect("spanning SQL"))
            .expect("a regional outage must degrade the answer, not fail it");
        assert!(
            resp.result.degradation.worst_fulfillment() < 1.0,
            "dead shard's unmet share must breach merged fulfillment"
        );
        assert!(
            resp.shards
                .iter()
                .any(|o| o.shard == dead && o.error.is_some()),
            "dead shard must be named in the fan-out outcomes"
        );
    }

    println!(
        "service_storm sharded OK shards={shards} clients={SHARD_CLIENTS} \
         queries={} population={population}",
        SHARD_CLIENTS * SHARD_QUERIES,
    );
}

/// The churn soak (`--churn`): sensor churn as a first-class workload
/// against the incremental LSM index.
///
/// A writer thread sustains register/retire churn (throttled to a steady
/// tens-of-thousands ops/sec so the merge thread's cadence, not raw lock
/// throughput, is what the soak exercises), client threads query the whole
/// viewport concurrently, and a merge thread compacts L0 whenever it
/// reaches its occupancy bound. Churned sensors live outside the viewport,
/// so every query must answer the exact base population — any torn or
/// stale answer is visible. Asserts:
///
/// * sustained churn ≥ 2,000 register/retire ops/sec under query load;
/// * no query-path stall: every query answered, worst wall latency under
///   [`CHURN_STALL_MS`] even while merges republish underneath;
/// * bounded L0: occupancy never drifts past cap + one merge's backlog.
fn churn_phase() {
    const CHURN_CLIENTS: usize = 4;
    const L0_CAP: usize = 256;
    /// Live churn cohort: the writer retires the oldest churned sensor
    /// once this many are in flight, so register/retire stay balanced.
    const COHORT: usize = 512;
    const WINDOW_MS: u64 = 600;
    const MIN_OPS_PER_SEC: f64 = 2_000.0;
    /// Worst acceptable single-query wall latency. Generous — the point is
    /// catching a query path that blocks behind a merge, not benchmarking.
    const CHURN_STALL_MS: u64 = 250;

    let sensors: Vec<SensorMeta> = (0..BASE)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new((i % SIDE) as f64, (i / SIDE) as f64),
                TimeDelta::from_millis(EXPIRY_MS),
                1.0,
            )
        })
        .collect();
    let svc = PortalService::new(
        sensors,
        AlwaysAvailable {
            expiry_ms: EXPIRY_MS,
        },
        PortalConfig {
            mode: Mode::Colr,
            // Uncapped: the count query contacts every viewport sensor, so
            // the answer is exact and any torn read is visible.
            max_sensors_per_query: None,
            index: IndexStrategy::Lsm(LsmConfig {
                l0_capacity: L0_CAP,
                level_ratio: 4,
            }),
            ..Default::default()
        },
    );
    svc.clock().advance(TimeDelta::from_secs(1));
    let sql = format!(
        "SELECT count(*) FROM sensor WHERE location WITHIN RECT(-0.5,-0.5,{},{})",
        SIDE as f64 - 0.5,
        SIDE as f64 - 0.5
    );

    let stop = AtomicBool::new(false);
    let churn_ops = AtomicU64::new(0);
    let queries_answered = AtomicU64::new(0);
    let worst_latency_ns = AtomicU64::new(0);
    let max_l0 = AtomicUsize::new(0);
    let merges = AtomicU64::new(0);
    let wall = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CHURN_CLIENTS {
            let handle = svc.clone();
            let sql = sql.as_str();
            let stop = &stop;
            let queries_answered = &queries_answered;
            let worst_latency_ns = &worst_latency_ns;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t0 = std::time::Instant::now();
                    let res = handle.query_sql(sql).expect("no query-path downtime");
                    let dt = t0.elapsed().as_nanos() as u64;
                    worst_latency_ns.fetch_max(dt, Ordering::Relaxed);
                    // Churned sensors live outside the viewport: the count
                    // must name the base population, every time.
                    assert_eq!(res.value, Some(BASE as f64), "torn answer under churn");
                    queries_answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // The churn writer: register into L0, retire the oldest once the
        // cohort is full. Throttled in small batches so the merge thread
        // (not the writer's lock throughput) sets the pace.
        {
            let handle = svc.clone();
            let stop = &stop;
            let churn_ops = &churn_ops;
            scope.spawn(move || {
                let mut cohort: VecDeque<SensorId> = VecDeque::with_capacity(COHORT + 1);
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // 64 ops per (coarse) sleep tick: ~5-10k ops/sec on a
                    // shared host — comfortably past the 2k floor while the
                    // merge pump still sets the pace.
                    for _ in 0..64 {
                        let id = handle.register_sensor(
                            Point::new(
                                -40.0 - (k % 64) as f64 * 0.2,
                                -40.0 - ((k / 64) % 64) as f64 * 0.2,
                            ),
                            TimeDelta::from_millis(EXPIRY_MS),
                            1.0,
                            0,
                        );
                        k += 1;
                        cohort.push_back(id);
                        let mut ops = 1;
                        if cohort.len() > COHORT {
                            let old = cohort.pop_front().expect("cohort non-empty");
                            assert!(handle.retire_sensor(old), "cohort sensor was live");
                            ops += 1;
                        }
                        churn_ops.fetch_add(ops, Ordering::Relaxed);
                    }
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
            });
        }
        // The merge pump: compact L0 whenever it hits its bound, watching
        // the high-water mark.
        {
            let handle = svc.clone();
            let stop = &stop;
            let max_l0 = &max_l0;
            let merges = &merges;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let stats = handle.index_stats().expect("churn soak runs on LSM");
                    max_l0.fetch_max(stats.l0_occupancy, Ordering::Relaxed);
                    if handle.wants_reindex(usize::MAX) {
                        handle.reindex();
                        merges.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(WINDOW_MS));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = wall.elapsed().as_secs_f64();

    let ops = churn_ops.load(Ordering::Relaxed);
    let ops_per_sec = ops as f64 / elapsed;
    let answered = queries_answered.load(Ordering::Relaxed);
    let worst_ms = worst_latency_ns.load(Ordering::Relaxed) as f64 / 1e6;
    let high_water = max_l0.load(Ordering::Relaxed);
    let merge_count = merges.load(Ordering::Relaxed);
    assert!(
        ops_per_sec >= MIN_OPS_PER_SEC,
        "churn too slow: {ops_per_sec:.0} ops/sec < {MIN_OPS_PER_SEC} under query load"
    );
    assert!(answered > 0, "no queries answered during the soak");
    assert!(
        worst_ms < CHURN_STALL_MS as f64,
        "query-path stall: worst latency {worst_ms:.1}ms during churn"
    );
    // Bounded L0: the cap plus one merge's worth of writer backlog. The
    // writer adds at most ~16k registrations/sec, so a merge pause would
    // have to exceed ~100ms to breach this — that *is* the stall we soak
    // for.
    let l0_bound = L0_CAP + 2 * COHORT;
    assert!(
        high_water <= l0_bound,
        "L0 unbounded under churn: high water {high_water} > {l0_bound}"
    );
    assert!(merge_count > 0, "the merge pump never ran");

    // Drain: merge until quiescent, then the answer must still be exact and
    // the retired cohort must be physically gone from the directory.
    while svc.wants_reindex(usize::MAX) {
        svc.reindex();
    }
    svc.reindex();
    let final_count = svc.query_sql(&sql).unwrap().value.unwrap();
    assert_eq!(final_count, BASE as f64, "population drifted under churn");
    let stats = svc.index_stats().expect("lsm stats");
    assert!(
        stats.live_sensors <= BASE + COHORT + 1,
        "retired churn sensors still counted live: {}",
        stats.live_sensors
    );
    println!(
        "service_storm churn ops={ops} ops_per_sec={ops_per_sec:.0} queries={answered} \
         worst_query_ms={worst_ms:.2} merges={merge_count} max_l0={high_water} \
         levels={} live={}",
        stats.levels, stats.live_sensors,
    );
    println!("service_storm churn OK");
}

/// Sensors in the eastern half of the grid go dark; every query keeps
/// getting answered (degraded), and the SLO watchdog must notice.
struct RegionalOutage {
    locations: Vec<Point>,
    cutoff_x: f64,
}

impl ProbeService for RegionalOutage {
    fn probe_batch(&self, ids: &[SensorId], now: Timestamp) -> Vec<Option<Reading>> {
        ids.iter()
            .map(|&id| {
                let loc = self.locations[id.0 as usize];
                if loc.x >= self.cutoff_x {
                    return None;
                }
                Some(Reading {
                    sensor: id,
                    value: id.0 as f64,
                    timestamp: now,
                    expires_at: now + TimeDelta::from_millis(EXPIRY_MS),
                })
            })
            .collect()
    }
}

/// Phase two: a fresh service under a half-dark fleet, flight-recording
/// every query, with a fulfillment watchdog attached. The breach report
/// must arrive and must embed flight records for the offending queries.
fn outage_phase() {
    let sensors: Vec<SensorMeta> = (0..BASE)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new((i % SIDE) as f64, (i / SIDE) as f64),
                TimeDelta::from_millis(EXPIRY_MS),
                1.0,
            )
        })
        .collect();
    let locations: Vec<Point> = sensors.iter().map(|m| m.location).collect();
    let svc = PortalService::new(
        sensors,
        RegionalOutage {
            locations,
            cutoff_x: SIDE as f64 / 2.0,
        },
        PortalConfig {
            mode: Mode::Colr,
            flight_record_every: 1,
            ..Default::default()
        },
    );
    svc.clock().advance(TimeDelta::from_secs(1));
    let watchdog = Arc::new(SloWatchdog::new(SloConfig {
        window: 32,
        min_samples: 8,
        p99_latency_us: None,
        min_fulfillment: Some(0.9),
        keep_flight_records: 4,
        cooldown: 16,
    }));
    svc.attach_watchdog(watchdog.clone());
    let sql = format!(
        "SELECT count(*) FROM sensor WHERE location WITHIN RECT(-0.5,-0.5,{},{}) SAMPLESIZE 200",
        SIDE as f64 - 0.5,
        SIDE as f64 - 0.5
    );
    for _ in 0..16 {
        svc.query_sql(&sql).expect("degraded, never refused");
    }
    let breaches = watchdog.breaches();
    assert!(
        !breaches.is_empty(),
        "half-dark fleet must breach fulfillment >= 0.9"
    );
    let report = &breaches[0];
    assert!(report.reason.contains("fulfillment"), "{}", report.reason);
    assert!(
        report.flight_records > 0,
        "breach report carries no flight records"
    );
    println!(
        "service_storm outage_phase breaches={} first_reason={:?} flight_records={}",
        breaches.len(),
        report.reason,
        report.flight_records,
    );
}
