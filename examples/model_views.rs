//! Model-based views over cached data (the paper's MauveDB remark): answer
//! "what's the temperature *here*?" from the cache alone — zero probes —
//! by IDW interpolation, and compare its accuracy and cost against sampled
//! collection.
//!
//! ```sh
//! cargo run --example model_views
//! ```

use colr_repro::colr::{
    AggKind, ColrConfig, ColrTree, IdwModel, Mode, Query, SensorMeta, TimeDelta, Timestamp,
};
use colr_repro::geo::{Circle, Point, Rect, Region};
use colr_repro::sensors::{SimNetwork, SpatialField};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A 500-sensor deployment measuring a smooth spatially correlated field
    // (think temperature).
    let extent = Rect::from_coords(0.0, 0.0, 300.0, 300.0);
    let mut rng = StdRng::seed_from_u64(7);
    let sensors: Vec<SensorMeta> = (0..500)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new(rng.random_range(0.0..300.0), rng.random_range(0.0..300.0)),
                TimeDelta::from_mins(10),
                0.95,
            )
        })
        .collect();
    let field = SpatialField::new(extent, 15, 30.0, 60.0, 15.0, 0.5, 3);
    // A second identically-seeded field gives us noiseless ground truth.
    let truth_field = SpatialField::new(extent, 15, 30.0, 60.0, 15.0, 0.5, 3);
    let truth_at = move |p: Point| truth_field.smooth_value(p);
    let network = SimNetwork::new(sensors.clone(), field, 11);
    let tree = ColrTree::build(sensors, ColrConfig::default(), 1);

    // Warm the cache with one sampled query over the whole extent.
    let mut qrng = StdRng::seed_from_u64(13);
    let warmup = Query::range(
        Region::Rect(Rect::from_coords(-1.0, -1.0, 301.0, 301.0)),
        TimeDelta::from_mins(10),
    )
    .with_terminal_level(2)
    .with_sample_size(200.0);
    let out = tree.execute(&warmup, Mode::Colr, &network, Timestamp(1_000), &mut qrng);
    println!(
        "warm-up: probed {} sensors, cache now holds {} readings",
        out.stats.sensors_probed,
        tree.cached_readings()
    );

    // 1. Point estimates with zero probes.
    let model = IdwModel::default();
    println!("\npoint estimates from the model (no probes):");
    println!(
        "{:>10} {:>10} {:>10} {:>8}",
        "location", "model", "truth", "err"
    );
    for (x, y) in [(50.0, 50.0), (150.0, 150.0), (250.0, 80.0), (90.0, 260.0)] {
        let p = Point::new(x, y);
        let est = model
            .estimate_at(&tree, p, Timestamp(2_000), TimeDelta::from_mins(10))
            .unwrap_or(f64::NAN);
        let truth = truth_at(p);
        println!(
            "{:>10} {est:>10.2} {truth:>10.2} {:>7.1}%",
            format!("({x:.0},{y:.0})"),
            100.0 * (est - truth).abs() / truth.abs().max(1e-9)
        );
    }

    // 2. Region average three ways: model (0 probes), sampling (few
    //    probes), full collection (all probes).
    let region = Region::Circle(Circle::new(Point::new(150.0, 150.0), 80.0));
    let staleness = TimeDelta::from_mins(10);

    let model_avg = model
        .estimate_region_avg(&tree, &region, Timestamp(2_000), staleness, 12)
        .unwrap_or(f64::NAN);

    let sampled_q = Query::range(region.clone(), staleness)
        .with_terminal_level(3)
        .with_sample_size(15.0);
    let sampled = tree.execute(
        &sampled_q,
        Mode::Colr,
        &network,
        Timestamp(2_000),
        &mut qrng,
    );
    let sampled_avg = sampled.aggregate(AggKind::Avg).unwrap_or(f64::NAN);

    let fresh_tree_for_truth = {
        // Probe everyone in-region through a clean tree for ground truth.
        let metas = tree.sensors().to_vec();
        ColrTree::build(metas, ColrConfig::default(), 1)
    };
    let exact_q = Query::range(region.clone(), staleness).with_terminal_level(3);
    let exact =
        fresh_tree_for_truth.execute(&exact_q, Mode::RTree, &network, Timestamp(2_000), &mut qrng);
    let exact_avg = exact.aggregate(AggKind::Avg).unwrap_or(f64::NAN);

    println!("\nregion average over a circle (r=80):");
    println!(
        "  model   : {model_avg:>8.2}   (0 probes)\n  sampled : {sampled_avg:>8.2}   ({} probes)\n  exact   : {exact_avg:>8.2}   ({} probes)",
        sampled.stats.sensors_probed, exact.stats.sensors_probed,
    );
    println!(
        "\nthe model answers from cached data alone — the cheapest point on the\ncost/freshness spectrum; sampling refreshes a bounded subset; full\ncollection pays one probe per sensor."
    );
}
