//! The Fig 7 scenario as an application: approximate the average water
//! discharge reported by 200 spatially correlated river gauges by probing
//! only a handful of them.
//!
//! ```sh
//! cargo run --example usgs_water
//! ```

use colr_repro::colr::{
    metrics, AggKind, ColrConfig, ColrTree, Mode, Query, SensorMeta, TimeDelta, Timestamp,
};
use colr_repro::geo::{Point, Rect, Region};
use colr_repro::sensors::{SimNetwork, SpatialField};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 200 gauges scattered over a state-sized extent. Discharge is spatially
    // correlated: nearby rivers respond to the same rainfall.
    let extent = Rect::from_coords(0.0, 0.0, 500.0, 400.0);
    let mut rng = StdRng::seed_from_u64(11);
    let sensors: Vec<SensorMeta> = (0..200)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new(rng.random_range(0.0..500.0), rng.random_range(0.0..400.0)),
                TimeDelta::from_mins(10),
                0.97,
            )
        })
        .collect();
    let field = SpatialField::new(extent, 25, 900.0, 40.0, 60.0, 22.0, 23);
    let network = SimNetwork::new(sensors.clone(), field, 29);

    let region = Region::Rect(Rect::from_coords(-1.0, -1.0, 501.0, 401.0));

    // Ground truth: probe everyone once through a plain R-Tree lookup.
    let full_tree = ColrTree::build(sensors.clone(), ColrConfig::default(), 1);
    let exact_q = Query::range(region.clone(), TimeDelta::from_mins(10)).with_terminal_level(2);
    let mut qrng = StdRng::seed_from_u64(5);
    let exact_out = full_tree.execute(&exact_q, Mode::RTree, &network, Timestamp(1_000), &mut qrng);
    let exact = exact_out.aggregate(AggKind::Avg).expect("gauges answered");
    println!(
        "exact average discharge (all {} gauges probed): {:.1}",
        exact_out.stats.sensors_probed, exact
    );

    println!(
        "\n{:>8} {:>12} {:>11} {:>10}",
        "sample", "avg", "rel_error", "probes"
    );
    for sample in [5usize, 10, 15, 30, 60] {
        let tree = ColrTree::build(sensors.clone(), ColrConfig::default(), 1);
        let q = Query::range(region.clone(), TimeDelta::from_mins(10))
            .with_terminal_level(2)
            .with_sample_size(sample as f64);
        let out = tree.execute(&q, Mode::Colr, &network, Timestamp(1_000), &mut qrng);
        let approx = out.aggregate(AggKind::Avg).unwrap_or(f64::NAN);
        println!(
            "{sample:>8} {approx:>12.1} {:>11.3} {:>10}",
            metrics::relative_error(approx, exact),
            out.stats.sensors_probed,
        );
    }

    println!(
        "\nspatial correlation is what makes this work: a ~15-gauge sample \
         lands within ~10% of the truth (the paper's Fig 7)."
    );
}
