//! Quickstart: build a COLR-Tree over a small sensor deployment, run a
//! sampled spatio-temporal query, and inspect what the index did.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use colr_repro::colr::probe::AlwaysAvailable;
use colr_repro::colr::{
    AggKind, ColrConfig, ColrTree, Mode, Query, SensorMeta, TimeDelta, Timestamp,
};
use colr_repro::geo::{Point, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Register 400 sensors on a 20x20 grid, each publishing readings that
    //    stay valid for 5 minutes, with 95% historical availability.
    let sensors: Vec<SensorMeta> = (0..400)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new((i % 20) as f64, (i / 20) as f64),
                TimeDelta::from_mins(5),
                0.95,
            )
        })
        .collect();

    // 2. Bulk-build the index (bottom-up k-means clustering, Section III-C).
    let tree = ColrTree::build(sensors, ColrConfig::default(), 42);
    println!(
        "built COLR-Tree: {} nodes, {} levels, slot width {}",
        tree.node_count(),
        tree.leaf_level() + 1,
        tree.slot_config().slot_width,
    );

    // 3. Ask for ~25 sensors in the left half of the map, at most 2 minutes
    //    stale. The probe service stands in for the live sensor network.
    let query = Query::range(
        Rect::from_coords(-0.5, -0.5, 9.5, 19.5),
        TimeDelta::from_mins(2),
    )
    .with_terminal_level(2)
    .with_sample_size(25.0);
    let probe = AlwaysAvailable { expiry_ms: 300_000 };
    let mut rng = StdRng::seed_from_u64(7);

    let cold = tree.execute(&query, Mode::Colr, &probe, Timestamp(1_000), &mut rng);
    println!(
        "\ncold query: probed {} of 200 region sensors, count(*) ≈ {:?}, latency {:.1} ms",
        cold.stats.sensors_probed,
        cold.aggregate(AggKind::Count),
        cold.latency_ms,
    );

    // 4. Re-issue the query a few seconds later: the slot caches answer most
    //    of it without touching the network.
    let warm = tree.execute(&query, Mode::Colr, &probe, Timestamp(10_000), &mut rng);
    println!(
        "warm query: probed {}, served {} readings + {} aggregate nodes from cache, latency {:.1} ms",
        warm.stats.sensors_probed,
        warm.stats.readings_from_cache,
        warm.stats.cache_nodes_used,
        warm.latency_ms,
    );

    // 5. Each group is one map icon: a bounding box plus an aggregate.
    println!("\nresult groups (map icons):");
    for g in warm.groups.iter().take(5) {
        println!(
            "  bbox [{:.1},{:.1}]–[{:.1},{:.1}]  {} readings{}",
            g.bbox.min.x,
            g.bbox.min.y,
            g.bbox.max.x,
            g.bbox.max.y,
            g.agg.count,
            if g.from_cache { "  (from cache)" } else { "" },
        );
    }
    if warm.groups.len() > 5 {
        println!("  ... and {} more", warm.groups.len() - 5);
    }
}
