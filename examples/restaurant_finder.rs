//! The Restaurant Finder service from the paper's introduction, end to end:
//! restaurants publish live waiting times; users pan a map and ask for the
//! distribution of waiting times in view, grouped by neighbourhood.
//!
//! ```sh
//! cargo run --example restaurant_finder
//! ```

use colr_repro::colr::TimeDelta;
use colr_repro::engine::{Portal, PortalConfig};
use colr_repro::sensors::{RandomWalkField, SimNetwork};
use colr_repro::workload::{PlacementModel, QueryWorkloadConfig, ScenarioConfig};

fn main() {
    // A city-scale deployment: 12,000 restaurants clustered around 40
    // neighbourhood centres, each publishing its current waiting time (valid
    // for up to 10 minutes) with realistic availability.
    let mut cfg = ScenarioConfig::live_local_small();
    cfg.sensor_count = 12_000;
    cfg.placement = PlacementModel::Clustered {
        cities: 40,
        alpha: 1.0,
        spread: 0.015,
    };
    cfg.queries = QueryWorkloadConfig {
        count: 0, // we issue queries interactively below
        ..Default::default()
    };
    let scenario = cfg.build();

    // Waiting times drift as a bounded random walk between 0 and 90 minutes.
    let field = RandomWalkField::new(scenario.sensors.len(), 0.0, 90.0, 4.0, 11);
    let network = SimNetwork::new(scenario.sensors.clone(), field, 99);

    let mut portal = Portal::new(scenario.sensors.clone(), network, PortalConfig::default());

    // A user pans to downtown (around the busiest neighbourhood) and asks
    // for restaurants with wait times, clustered at ~60 map units, sampling
    // at most 40 restaurants.
    let centre = scenario.sensors[0].location;
    let (x0, y0, x1, y1) = (
        centre.x - 150.0,
        centre.y - 150.0,
        centre.x + 150.0,
        centre.y + 150.0,
    );
    portal.clock().advance(TimeDelta::from_secs(5));
    let sql = format!(
        "SELECT avg(value) FROM sensor S \
         WHERE S.location WITHIN RECT({x0:.1}, {y0:.1}, {x1:.1}, {y1:.1}) \
         AND S.time BETWEEN now()-5 AND now() mins \
         CLUSTER 60 SAMPLESIZE 40"
    );
    println!("portal query:\n  {sql}\n");

    let result = portal.query_sql(&sql).expect("valid dialect query");
    println!(
        "average wait in view: {:.1} min (from {} sampled restaurants, {} probes, {:.1} ms)",
        result.value.unwrap_or(f64::NAN),
        result.groups.iter().map(|g| g.count).sum::<u64>(),
        result.stats.sensors_probed,
        result.latency_ms,
    );

    println!("\nneighbourhood groups:");
    for g in result.groups.iter().take(8) {
        println!(
            "  [{:6.1},{:6.1}] {:>3} restaurants, avg wait {:>5.1} min{}",
            g.bbox.center().x,
            g.bbox.center().y,
            g.count,
            g.value.unwrap_or(f64::NAN),
            if g.from_cache { "  (cached)" } else { "" },
        );
    }

    if let Some(h) = &result.histogram {
        println!("\nwaiting-time distribution (10 buckets): {:?}", h.counts());
    }

    // The user zooms in: smaller CLUSTER → finer groups, cache absorbs most
    // of the second query.
    portal.clock().advance(TimeDelta::from_secs(20));
    let zoomed = format!(
        "SELECT avg(value) FROM sensor \
         WHERE location WITHIN RECT({:.1}, {:.1}, {:.1}, {:.1}) \
         AND time BETWEEN now()-5 AND now() mins \
         CLUSTER 15 SAMPLESIZE 40",
        centre.x - 60.0,
        centre.y - 60.0,
        centre.x + 60.0,
        centre.y + 60.0,
    );
    let result2 = portal.query_sql(&zoomed).expect("valid dialect query");
    println!(
        "\nafter zoom-in: {} finer groups, {} probes ({} readings straight from cache)",
        result2.groups.len(),
        result2.stats.sensors_probed,
        result2.stats.readings_from_cache,
    );
}
