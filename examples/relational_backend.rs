//! The Section VI relational implementation in action: export a bulk-built
//! tree into layer/cache tables, push readings through the trigger cascade,
//! and watch the cache tables stay consistent with the native arena tree.
//!
//! ```sh
//! cargo run --example relational_backend
//! ```

use colr_repro::colr::probe::AlwaysAvailable;
use colr_repro::colr::{ColrConfig, ColrTree, SensorMeta, TimeDelta, Timestamp};
use colr_repro::geo::{Point, Rect, Region};
use colr_repro::relstore::RelationalColrTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 16x16 sensor grid, bulk-built natively then exported to the
    // relational schema (one layer table + one cache table per level).
    let sensors: Vec<SensorMeta> = (0..256)
        .map(|i| {
            SensorMeta::new(
                i as u32,
                Point::new((i % 16) as f64, (i / 16) as f64),
                TimeDelta::from_mins(5),
                1.0,
            )
        })
        .collect();
    let native = ColrTree::build(sensors, ColrConfig::default(), 7);
    let mut rel = RelationalColrTree::from_tree(&native);
    println!(
        "exported tree: {} levels, root node {}, slot window of {} slots",
        rel.leaf_level() + 1,
        rel.root_id(),
        rel.num_slots(),
    );

    // A cold query probes every region sensor and writes the readings back
    // through the trigger pipeline (roll → slot insert → slot update ...).
    let region = Region::Rect(Rect::from_coords(-0.5, -0.5, 7.5, 7.5));
    let mut probe = AlwaysAvailable { expiry_ms: 300_000 };
    let mut rng = StdRng::seed_from_u64(3);
    let cold = rel.query(
        &region,
        TimeDelta::from_mins(5),
        2,
        None,
        &mut probe,
        Timestamp(1_000),
        &mut rng,
    );
    println!(
        "\ncold query: probed {}, cached {} readings, {} cache rows materialised",
        cold.stats.sensors_probed,
        rel.cached_readings(),
        rel.total_cache_rows(),
    );
    rel.validate_cache_consistency()
        .expect("layered cache tables consistent after trigger cascade");
    println!("cache tables consistent: every parent row equals the merge of its children");

    // The warm query is answered from the cache tables via the cache-read
    // access method — a join, no probes.
    let warm = rel.query(
        &region,
        TimeDelta::from_mins(5),
        2,
        None,
        &mut probe,
        Timestamp(2_000),
        &mut rng,
    );
    println!(
        "\nwarm query: probed {}, {} aggregate cache nodes used, result size {}",
        warm.stats.sensors_probed,
        warm.stats.cache_nodes_used,
        warm.result_size(),
    );

    // Slide the window far into the future: the roll trigger expunges every
    // slot at every level.
    rel.run_triggers(Timestamp(10 * 300_000));
    println!(
        "\nafter the window slides past all expiries: {} cache rows, {} cached readings",
        rel.total_cache_rows(),
        rel.cached_readings(),
    );
}
