//! Workspace umbrella crate for the COLR-Tree reproduction.
//!
//! Re-exports the member crates so integration tests and examples can use a
//! single dependency root. See `README.md` for the tour.

pub use colr_engine as engine;
pub use colr_geo as geo;
pub use colr_relstore as relstore;
pub use colr_sensors as sensors;
pub use colr_telemetry as telemetry;
pub use colr_tree as colr;
pub use colr_workload as workload;
